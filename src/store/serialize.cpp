#include "store/serialize.hpp"

#include <algorithm>

#include "store/json.hpp"
#include <bit>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

namespace hi::store {

namespace {

// --- SHA-256 (FIPS 180-4) ----------------------------------------------

constexpr std::array<std::uint32_t, 64> kSha256K = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

void sha256_block(std::array<std::uint32_t, 8>& h, const std::uint8_t* p) {
  std::array<std::uint32_t, 64> w{};
  for (int i = 0; i < 16; ++i) {
    w[static_cast<std::size_t>(i)] =
        (static_cast<std::uint32_t>(p[4 * i]) << 24) |
        (static_cast<std::uint32_t>(p[4 * i + 1]) << 16) |
        (static_cast<std::uint32_t>(p[4 * i + 2]) << 8) |
        static_cast<std::uint32_t>(p[4 * i + 3]);
  }
  for (std::size_t i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3];
  std::uint32_t e = h[4], f = h[5], g = h[6], hh = h[7];
  for (std::size_t i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = hh + s1 + ch + kSha256K[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    hh = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  h[0] += a;
  h[1] += b;
  h[2] += c;
  h[3] += d;
  h[4] += e;
  h[5] += f;
  h[6] += g;
  h[7] += hh;
}

}  // namespace

Digest sha256(std::string_view data) {
  std::array<std::uint32_t, 8> h = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                    0xa54ff53a, 0x510e527f, 0x9b05688c,
                                    0x1f83d9ab, 0x5be0cd19};
  const auto* p = reinterpret_cast<const std::uint8_t*>(data.data());
  std::size_t n = data.size();
  while (n >= 64) {
    sha256_block(h, p);
    p += 64;
    n -= 64;
  }
  // Final block(s): message tail + 0x80 + zero pad + 64-bit bit length.
  std::array<std::uint8_t, 128> tail{};
  std::memcpy(tail.data(), p, n);
  tail[n] = 0x80;
  const std::size_t blocks = n + 9 <= 64 ? 1 : 2;
  const std::uint64_t bits = static_cast<std::uint64_t>(data.size()) * 8;
  for (int i = 0; i < 8; ++i) {
    tail[blocks * 64 - 8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(bits >> (56 - 8 * i));
  }
  sha256_block(h, tail.data());
  if (blocks == 2) {
    sha256_block(h, tail.data() + 64);
  }
  Digest out;
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 4; ++j) {
      out.bytes[static_cast<std::size_t>(4 * i + j)] =
          static_cast<std::uint8_t>(h[static_cast<std::size_t>(i)] >>
                                    (24 - 8 * j));
    }
  }
  return out;
}

std::string Digest::hex() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (std::uint8_t b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

// --- ByteWriter / ByteReader -------------------------------------------

void ByteWriter::put_u16(std::uint16_t v) {
  put_u8(static_cast<std::uint8_t>(v));
  put_u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::put_u32(std::uint32_t v) {
  put_u16(static_cast<std::uint16_t>(v));
  put_u16(static_cast<std::uint16_t>(v >> 16));
}

void ByteWriter::put_u64(std::uint64_t v) {
  put_u32(static_cast<std::uint32_t>(v));
  put_u32(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::put_string(std::string_view s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

void ByteWriter::put_digest(const Digest& d) {
  buf_.append(reinterpret_cast<const char*>(d.bytes.data()), d.bytes.size());
}

bool ByteReader::take(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::get_u8() {
  if (!take(1)) return 0;
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint16_t ByteReader::get_u16() {
  if (!take(2)) return 0;  // whole-width bounds check: fail -> exactly 0
  std::uint16_t v = 0;
  for (int i = 1; i >= 0; --i) {
    v = static_cast<std::uint16_t>((v << 8) |
                                   static_cast<std::uint8_t>(data_[pos_ + i]));
  }
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::get_u32() {
  if (!take(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint8_t>(data_[pos_ + i]);
  }
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::get_u64() {
  if (!take(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint8_t>(data_[pos_ + i]);
  }
  pos_ += 8;
  return v;
}

double ByteReader::get_f64() { return std::bit_cast<double>(get_u64()); }

std::string ByteReader::get_string() {
  const std::uint32_t n = get_u32();
  if (!take(n)) return {};
  std::string out(data_.substr(pos_, n));
  pos_ += n;
  return out;
}

Digest ByteReader::get_digest() {
  Digest d;
  if (!take(d.bytes.size())) return d;
  std::memcpy(d.bytes.data(), data_.data() + pos_, d.bytes.size());
  pos_ += d.bytes.size();
  return d;
}

// --- canonical binary codecs -------------------------------------------

namespace {

/// Decodes a 0/1 enum byte; anything else marks the payload corrupt by
/// pushing the reader past its end (sticky failure).
template <typename E>
bool get_enum01(ByteReader& r, E zero, E one, E& out) {
  const std::uint8_t v = r.get_u8();
  if (!r.ok() || v > 1) return false;
  out = v == 0 ? zero : one;
  return true;
}

}  // namespace

void write_config(ByteWriter& w, const model::NetworkConfig& cfg) {
  w.put_u16(cfg.topology.mask());
  w.put_f64(cfg.radio.fc_hz);
  w.put_f64(cfg.radio.bit_rate_bps);
  w.put_f64(cfg.radio.tx_dbm);
  w.put_f64(cfg.radio.tx_mw);
  w.put_f64(cfg.radio.rx_dbm);
  w.put_f64(cfg.radio.rx_mw);
  w.put_i32(cfg.tx_level_index);
  w.put_u8(cfg.mac.protocol == model::MacProtocol::kTdma ? 1 : 0);
  w.put_i32(cfg.mac.buffer_packets);
  w.put_u8(cfg.mac.access_mode == model::CsmaAccessMode::kPersistent ? 1 : 0);
  w.put_f64(cfg.mac.slot_s);
  w.put_u8(cfg.routing.protocol == model::RoutingProtocol::kMesh ? 1 : 0);
  w.put_i32(cfg.routing.coordinator);
  w.put_i32(cfg.routing.max_hops);
  w.put_f64(cfg.app.baseline_mw);
  w.put_i32(cfg.app.packet_bytes);
  w.put_f64(cfg.app.throughput_pps);
  w.put_f64(cfg.battery_j);
}

bool read_config(ByteReader& r, model::NetworkConfig& cfg) {
  cfg.topology = model::Topology::from_mask(r.get_u16());
  cfg.radio.fc_hz = r.get_f64();
  cfg.radio.bit_rate_bps = r.get_f64();
  cfg.radio.tx_dbm = r.get_f64();
  cfg.radio.tx_mw = r.get_f64();
  cfg.radio.rx_dbm = r.get_f64();
  cfg.radio.rx_mw = r.get_f64();
  cfg.tx_level_index = r.get_i32();
  if (!get_enum01(r, model::MacProtocol::kCsma, model::MacProtocol::kTdma,
                  cfg.mac.protocol)) {
    return false;
  }
  cfg.mac.buffer_packets = r.get_i32();
  if (!get_enum01(r, model::CsmaAccessMode::kNonPersistent,
                  model::CsmaAccessMode::kPersistent, cfg.mac.access_mode)) {
    return false;
  }
  cfg.mac.slot_s = r.get_f64();
  if (!get_enum01(r, model::RoutingProtocol::kStar,
                  model::RoutingProtocol::kMesh, cfg.routing.protocol)) {
    return false;
  }
  cfg.routing.coordinator = r.get_i32();
  cfg.routing.max_hops = r.get_i32();
  cfg.app.baseline_mw = r.get_f64();
  cfg.app.packet_bytes = r.get_i32();
  cfg.app.throughput_pps = r.get_f64();
  cfg.battery_j = r.get_f64();
  return r.ok();
}

void write_evaluation(ByteWriter& w, const dse::Evaluation& ev) {
  w.put_f64(ev.pdr);
  w.put_f64(ev.power_mw);
  w.put_f64(ev.nlt_s);
  const net::SimResult& d = ev.detail;
  w.put_f64(d.pdr);
  w.put_f64(d.worst_power_mw);
  w.put_f64(d.mean_power_mw);
  w.put_f64(d.nlt_s);
  w.put_f64(d.duration_s);
  w.put_u64(d.events);
  w.put_u64(d.medium.transmissions);
  w.put_u64(d.medium.deliveries_offered);
  w.put_u64(d.medium.below_sensitivity);
  w.put_u32(static_cast<std::uint32_t>(d.nodes.size()));
  for (const net::NodeResult& n : d.nodes) {
    w.put_i32(n.location);
    w.put_f64(n.pdr);
    w.put_f64(n.power_mw);
    w.put_u64(n.app_sent);
    w.put_u64(n.radio.tx_packets);
    w.put_u64(n.radio.rx_ok);
    w.put_u64(n.radio.rx_corrupted);
    w.put_u64(n.radio.rx_missed);
    w.put_u64(n.radio.rx_aborted);
    w.put_u64(n.mac.enqueued);
    w.put_u64(n.mac.sent);
    w.put_u64(n.mac.dropped_buffer);
    w.put_u64(n.mac.backoffs);
    w.put_u64(n.routing.originated);
    w.put_u64(n.routing.delivered);
    w.put_u64(n.routing.duplicates);
    w.put_u64(n.routing.relayed);
  }
  if (d.latency.collected || d.crowd.present) {
    // Conditional tail: latency-off evaluations keep the exact byte
    // image every pre-latency store holds, and readers detect the tail
    // by not being at_end() after the legacy fields.  Crowd records need
    // the tail even with latency off (the crowd tail below sits after
    // it), so they emit it with all-zero samples; the marker then tells
    // the reader whether latency was actually collected.
    w.put_u64(d.latency.samples);
    w.put_f64(d.latency.mean_s);
    w.put_f64(d.latency.p50_s);
    w.put_f64(d.latency.p95_s);
    w.put_f64(d.latency.max_s);
  }
  if (d.crowd.present) {
    // Crowd tail, marker-guarded: single-body records (the entire
    // pre-crowd store population) never reach this block, so their
    // bytes are unchanged; crowd records are only ever read back by
    // crowd-aware binaries, which require the marker.
    w.put_string("hi.crowd.tail.v1");
    w.put_bool(d.latency.collected);
    w.put_i32(d.crowd.bodies);
    w.put_f64(d.crowd.min_body_pdr);
    w.put_u64(d.crowd.cross_offered);
    w.put_u64(d.crowd.cross_below_sensitivity);
    w.put_u64(d.crowd.foreign_heard);
    w.put_u64(d.crowd.foreign_decoded);
  }
}

bool read_evaluation(ByteReader& r, dse::Evaluation& ev) {
  ev.pdr = r.get_f64();
  ev.power_mw = r.get_f64();
  ev.nlt_s = r.get_f64();
  net::SimResult& d = ev.detail;
  d.pdr = r.get_f64();
  d.worst_power_mw = r.get_f64();
  d.mean_power_mw = r.get_f64();
  d.nlt_s = r.get_f64();
  d.duration_s = r.get_f64();
  d.events = r.get_u64();
  d.medium.transmissions = r.get_u64();
  d.medium.deliveries_offered = r.get_u64();
  d.medium.below_sensitivity = r.get_u64();
  const std::uint32_t n_nodes = r.get_u32();
  if (!r.ok() || n_nodes > 64) return false;  // > kNumLocations: corrupt
  d.nodes.clear();
  d.nodes.reserve(n_nodes);
  for (std::uint32_t i = 0; i < n_nodes; ++i) {
    net::NodeResult n;
    n.location = r.get_i32();
    n.pdr = r.get_f64();
    n.power_mw = r.get_f64();
    n.app_sent = r.get_u64();
    n.radio.tx_packets = r.get_u64();
    n.radio.rx_ok = r.get_u64();
    n.radio.rx_corrupted = r.get_u64();
    n.radio.rx_missed = r.get_u64();
    n.radio.rx_aborted = r.get_u64();
    n.mac.enqueued = r.get_u64();
    n.mac.sent = r.get_u64();
    n.mac.dropped_buffer = r.get_u64();
    n.mac.backoffs = r.get_u64();
    n.routing.originated = r.get_u64();
    n.routing.delivered = r.get_u64();
    n.routing.duplicates = r.get_u64();
    n.routing.relayed = r.get_u64();
    d.nodes.push_back(n);
  }
  if (r.ok() && !r.at_end()) {
    d.latency.collected = true;
    d.latency.samples = r.get_u64();
    d.latency.mean_s = r.get_f64();
    d.latency.p50_s = r.get_f64();
    d.latency.p95_s = r.get_f64();
    d.latency.max_s = r.get_f64();
  }
  if (r.ok() && !r.at_end()) {
    // Crowd tail; anything after the latency fields must carry the
    // marker or the record is from a future (unknown) format.
    if (r.get_string() != "hi.crowd.tail.v1") return false;
    d.latency.collected = r.get_bool();
    d.crowd.present = true;
    d.crowd.bodies = r.get_i32();
    d.crowd.min_body_pdr = r.get_f64();
    d.crowd.cross_offered = r.get_u64();
    d.crowd.cross_below_sensitivity = r.get_u64();
    d.crowd.foreign_heard = r.get_u64();
    d.crowd.foreign_decoded = r.get_u64();
    if (!r.at_end()) return false;
  }
  return r.ok();
}

// --- fingerprints -------------------------------------------------------

Digest settings_fingerprint(const dse::EvaluatorSettings& s,
                            std::string_view channel_tag) {
  ByteWriter w;
  w.put_string("hi.settings.v1");
  w.put_f64(s.sim.duration_s);
  w.put_f64(s.sim.gen_guard_s);
  w.put_u64(s.sim.seed);
  w.put_u64(s.sim.channel_seed);
  w.put_f64(s.sim.capture_db);
  w.put_f64(s.sim.csma.turnaround_s);
  w.put_f64(s.sim.csma.backoff_max_s);
  w.put_f64(s.sim.csma.persistent_poll_s);
  w.put_i32(s.runs);
  w.put_string(channel_tag);
  if (s.sim.collect_latency) {
    // Latency collection does not perturb the simulation, but it does
    // decide whether records carry the latency tail, so warmed runs must
    // not mix the two.  Appended only when on — every pre-latency digest
    // (and thus every existing store) is preserved bit for bit.
    w.put_string("hi.latency.v1");
  }
  return sha256(w.bytes());
}

Digest scenario_fingerprint(const model::Scenario& sc) {
  ByteWriter w;
  w.put_string("hi.scenario.v1");
  w.put_f64(sc.chip.fc_hz);
  w.put_f64(sc.chip.bit_rate_bps);
  w.put_f64(sc.chip.rx_dbm);
  w.put_f64(sc.chip.rx_mw);
  w.put_u32(static_cast<std::uint32_t>(sc.chip.tx_levels.size()));
  for (const model::TxLevel& l : sc.chip.tx_levels) {
    w.put_f64(l.dbm);
    w.put_f64(l.mw);
  }
  w.put_f64(sc.app.baseline_mw);
  w.put_i32(sc.app.packet_bytes);
  w.put_f64(sc.app.throughput_pps);
  w.put_f64(sc.battery_j);
  w.put_i32(sc.coordinator);
  w.put_i32(sc.max_hops);
  w.put_f64(sc.tdma_slot_s);
  w.put_i32(sc.mac_buffer_packets);
  w.put_u32(static_cast<std::uint32_t>(sc.required_locations.size()));
  for (int loc : sc.required_locations) w.put_i32(loc);
  w.put_u32(static_cast<std::uint32_t>(sc.coverage.size()));
  for (const model::CoverageConstraint& c : sc.coverage) {
    w.put_u32(static_cast<std::uint32_t>(c.locations.size()));
    for (int loc : c.locations) w.put_i32(loc);
  }
  w.put_u32(static_cast<std::uint32_t>(sc.dependencies.size()));
  for (const model::DependencyConstraint& d : sc.dependencies) {
    w.put_i32(d.if_used);
    w.put_i32(d.then_used);
  }
  w.put_i32(sc.min_nodes);
  w.put_i32(sc.max_nodes);
  return sha256(w.bytes());
}

Digest options_fingerprint(const dse::ExplorationOptions& opt,
                           dse::ExplorerKind kind) {
  ByteWriter w;
  w.put_string("hi.expopt.v1");
  w.put_u8(static_cast<std::uint8_t>(kind));
  w.put_i32(opt.budget);
  switch (kind) {
    case dse::ExplorerKind::kAlgorithm1:
      w.put_bool(opt.use_alpha_termination);
      w.put_u8(opt.bound == dse::TerminationBound::kPaperAlpha ? 1 : 0);
      w.put_f64(opt.alpha_kappa);
      break;
    case dse::ExplorerKind::kAnnealing:
      w.put_u64(opt.seed);
      w.put_f64(opt.t_start_mw);
      w.put_f64(opt.t_end_mw);
      w.put_f64(opt.penalty_mw_per_pdr);
      break;
    case dse::ExplorerKind::kExhaustive:
      break;
    case dse::ExplorerKind::kFastIlp:
      w.put_i32(opt.fast_ilp_patience);
      break;
  }
  if (opt.robust.active()) {
    // Inactive robustness appends nothing, so every pre-robust digest
    // (and thus every existing store) is preserved bit for bit.
    w.put_string("hi.robust.v1");
    w.put_i32(opt.robust.gamma);
    w.put_i32(opt.robust.realizations);
    w.put_f64(opt.robust.confidence);
  }
  return sha256(w.bytes());
}

// --- scenario JSON ------------------------------------------------------

// The JSON machinery (parser, typed accessors, shortest-round-trip
// double formatting) lives in store/json.hpp so the crowd codec and the
// CLI report writers share one implementation.
namespace {

using detail::JsonParser;
using detail::JsonValue;
using detail::fmt_double;
using detail::put_json_string;
using ScenarioBuilder = detail::ObjectReader;

}  // namespace

std::string scenario_to_json(const model::Scenario& sc) {
  std::string out;
  out += "{\n  \"format\": \"hi-scenario-v1\",\n";
  out += "  \"chip\": {\n    \"name\": ";
  put_json_string(out, sc.chip.name);
  out += ",\n    \"fc_hz\": " + fmt_double(sc.chip.fc_hz);
  out += ",\n    \"bit_rate_bps\": " + fmt_double(sc.chip.bit_rate_bps);
  out += ",\n    \"rx_dbm\": " + fmt_double(sc.chip.rx_dbm);
  out += ",\n    \"rx_mw\": " + fmt_double(sc.chip.rx_mw);
  out += ",\n    \"tx_levels\": [";
  for (std::size_t i = 0; i < sc.chip.tx_levels.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"dbm\": " + fmt_double(sc.chip.tx_levels[i].dbm) +
           ", \"mw\": " + fmt_double(sc.chip.tx_levels[i].mw) + "}";
  }
  out += "]\n  },\n";
  out += "  \"app\": {\"baseline_mw\": " + fmt_double(sc.app.baseline_mw) +
         ", \"packet_bytes\": " + std::to_string(sc.app.packet_bytes) +
         ", \"throughput_pps\": " + fmt_double(sc.app.throughput_pps) +
         "},\n";
  out += "  \"battery_j\": " + fmt_double(sc.battery_j) + ",\n";
  out += "  \"coordinator\": " + std::to_string(sc.coordinator) + ",\n";
  out += "  \"max_hops\": " + std::to_string(sc.max_hops) + ",\n";
  out += "  \"tdma_slot_s\": " + fmt_double(sc.tdma_slot_s) + ",\n";
  out += "  \"mac_buffer_packets\": " + std::to_string(sc.mac_buffer_packets) +
         ",\n";
  out += "  \"required_locations\": [";
  for (std::size_t i = 0; i < sc.required_locations.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(sc.required_locations[i]);
  }
  out += "],\n  \"coverage\": [";
  for (std::size_t i = 0; i < sc.coverage.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\n    {\"locations\": [";
    for (std::size_t j = 0; j < sc.coverage[i].locations.size(); ++j) {
      if (j > 0) out += ", ";
      out += std::to_string(sc.coverage[i].locations[j]);
    }
    out += "], \"reason\": ";
    put_json_string(out, sc.coverage[i].reason);
    out += "}";
  }
  if (!sc.coverage.empty()) out += "\n  ";
  out += "],\n  \"dependencies\": [";
  for (std::size_t i = 0; i < sc.dependencies.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\n    {\"if_used\": " + std::to_string(sc.dependencies[i].if_used) +
           ", \"then_used\": " + std::to_string(sc.dependencies[i].then_used) +
           ", \"reason\": ";
    put_json_string(out, sc.dependencies[i].reason);
    out += "}";
  }
  if (!sc.dependencies.empty()) out += "\n  ";
  out += "],\n";
  out += "  \"min_nodes\": " + std::to_string(sc.min_nodes) + ",\n";
  out += "  \"max_nodes\": " + std::to_string(sc.max_nodes) + "\n}\n";
  return out;
}

std::optional<model::Scenario> scenario_from_json(std::string_view json,
                                                  std::string* error) {
  std::optional<JsonValue> root = JsonParser(json).parse(error);
  if (!root) return std::nullopt;
  ScenarioBuilder b(error);
  if (root->kind != JsonValue::Kind::kObject) {
    b.fail("top-level JSON value must be an object");
    return std::nullopt;
  }
  b.check_keys(*root,
               {"format", "chip", "app", "battery_j", "coordinator",
                "max_hops", "tdma_slot_s", "mac_buffer_packets",
                "required_locations", "coverage", "dependencies", "min_nodes",
                "max_nodes"});
  if (b.str(*root, "format") != "hi-scenario-v1" && !b.failed()) {
    b.fail("unsupported format (want \"hi-scenario-v1\")");
  }

  model::Scenario sc;
  if (const JsonValue* chip = b.require(*root, "chip"); chip != nullptr) {
    b.check_keys(*chip,
                 {"name", "fc_hz", "bit_rate_bps", "rx_dbm", "rx_mw",
                  "tx_levels"});
    sc.chip.name = b.str(*chip, "name");
    sc.chip.fc_hz = b.num(*chip, "fc_hz");
    sc.chip.bit_rate_bps = b.num(*chip, "bit_rate_bps");
    sc.chip.rx_dbm = b.num(*chip, "rx_dbm");
    sc.chip.rx_mw = b.num(*chip, "rx_mw");
    sc.chip.tx_levels.clear();
    if (const JsonValue* levels = b.require(*chip, "tx_levels");
        levels != nullptr && levels->kind == JsonValue::Kind::kArray) {
      for (const JsonValue& l : levels->items) {
        b.check_keys(l, {"dbm", "mw"});
        model::TxLevel level;
        level.dbm = b.num(l, "dbm");
        level.mw = b.num(l, "mw");
        sc.chip.tx_levels.push_back(level);
      }
    }
  }
  if (const JsonValue* app = b.require(*root, "app"); app != nullptr) {
    b.check_keys(*app, {"baseline_mw", "packet_bytes", "throughput_pps"});
    sc.app.baseline_mw = b.num(*app, "baseline_mw");
    sc.app.packet_bytes = b.integer(*app, "packet_bytes");
    sc.app.throughput_pps = b.num(*app, "throughput_pps");
  }
  sc.battery_j = b.num(*root, "battery_j");
  sc.coordinator = b.integer(*root, "coordinator");
  sc.max_hops = b.integer(*root, "max_hops");
  sc.tdma_slot_s = b.num(*root, "tdma_slot_s");
  sc.mac_buffer_packets = b.integer(*root, "mac_buffer_packets");
  sc.required_locations = b.int_array(*root, "required_locations");
  sc.coverage.clear();
  if (const JsonValue* cov = b.require(*root, "coverage");
      cov != nullptr && cov->kind == JsonValue::Kind::kArray) {
    for (const JsonValue& group : cov->items) {
      b.check_keys(group, {"locations", "reason"});
      model::CoverageConstraint c;
      c.locations = b.int_array(group, "locations");
      // reason is a non-owning const char*; the JSON text would dangle.
      // Fingerprints ignore reasons, so parsing it back as "" is lossless
      // for every identity the store depends on.
      c.reason = "";
      (void)b.str(group, "reason");
      sc.coverage.push_back(std::move(c));
    }
  }
  sc.dependencies.clear();
  if (const JsonValue* deps = b.require(*root, "dependencies");
      deps != nullptr && deps->kind == JsonValue::Kind::kArray) {
    for (const JsonValue& dep : deps->items) {
      b.check_keys(dep, {"if_used", "then_used", "reason"});
      model::DependencyConstraint d;
      d.if_used = b.integer(dep, "if_used");
      d.then_used = b.integer(dep, "then_used");
      d.reason = "";
      (void)b.str(dep, "reason");
      sc.dependencies.push_back(d);
    }
  }
  sc.min_nodes = b.integer(*root, "min_nodes");
  sc.max_nodes = b.integer(*root, "max_nodes");
  if (b.failed()) return std::nullopt;
  return sc;
}

}  // namespace hi::store
