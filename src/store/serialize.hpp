// hi-opt: canonical, versioned serialization for the durable store.
//
// Three layers live here:
//
//   bytes        ByteWriter / ByteReader — a little-endian binary codec.
//                Doubles travel as their IEEE-754 bit patterns, so every
//                value round-trips exactly: a result read back from disk
//                is bit-identical to the one the simulator produced,
//                which is what lets a store-warmed run reproduce a cold
//                run bit for bit (DESIGN.md §10).
//
//   fingerprints SHA-256 digests over the canonical byte form.
//                settings_fingerprint() covers everything an Evaluation
//                depends on besides the design point itself — Tsim, the
//                replication count, the experiment seed root, the
//                channel-realization root, CSMA timing, and a caller-
//                supplied channel tag naming the channel factory (a
//                std::function cannot be hashed) — so a stored result is
//                only ever served to an evaluator with identical
//                settings.  A 64-bit design_key() is never trusted
//                across processes: stored records carry the canonical
//                config and the store re-verifies equality on every hit.
//                scenario_fingerprint() identifies the design space a
//                campaign sweeps (component library, constraints,
//                application profile); cosmetic strings (chip name,
//                constraint reasons) are excluded so renaming a
//                constraint does not orphan a checkpoint.
//
//   scenario     scenario_to_json / scenario_from_json — a human-
//   JSON         readable interchange form for model::Scenario, so
//                campaign definitions can live next to the store.
//                Doubles are printed shortest-round-trip; parse →
//                serialize → parse is a fixed point and fingerprints
//                survive the trip (reason strings, which the fingerprint
//                ignores, are emitted for readability but parsed back as
//                empty — CoverageConstraint::reason is a non-owning
//                const char*).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "dse/evaluator.hpp"
#include "dse/explorer.hpp"
#include "model/design_space.hpp"

namespace hi::store {

/// Bump when any canonical byte layout below changes; the record log
/// embeds it in the file header, so an old store fails loudly instead of
/// being misparsed.
inline constexpr std::uint32_t kFormatVersion = 1;

/// A 256-bit content digest (SHA-256).
struct Digest {
  std::array<std::uint8_t, 32> bytes{};

  /// Lowercase hex rendering, e.g. for log lines and JSON.
  [[nodiscard]] std::string hex() const;

  friend bool operator==(const Digest&, const Digest&) = default;
  friend auto operator<=>(const Digest&, const Digest&) = default;
};

/// SHA-256 of `data` (FIPS 180-4; self-contained, no dependencies).
[[nodiscard]] Digest sha256(std::string_view data);

/// Little-endian binary writer; see the file comment.
class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i32(std::int32_t v) { put_u32(static_cast<std::uint32_t>(v)); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  /// IEEE-754 bit pattern — exact round-trip, including -0.0 and NaN.
  void put_f64(double v);
  /// u32 length + raw bytes.
  void put_string(std::string_view s);
  void put_digest(const Digest& d);

  [[nodiscard]] const std::string& bytes() const { return buf_; }
  [[nodiscard]] std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Sticky-failure binary reader: any read past the end (or a malformed
/// length) sets ok() to false and returns zero values from then on, so
/// record decoders can run to completion and check ok() once — a corrupt
/// payload is reported, never a crash.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  [[nodiscard]] std::uint8_t get_u8();
  [[nodiscard]] std::uint16_t get_u16();
  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] std::int32_t get_i32() {
    return static_cast<std::int32_t>(get_u32());
  }
  [[nodiscard]] bool get_bool() { return get_u8() != 0; }
  [[nodiscard]] double get_f64();
  [[nodiscard]] std::string get_string();
  [[nodiscard]] Digest get_digest();

  /// True while every read so far stayed in bounds.
  [[nodiscard]] bool ok() const { return ok_; }
  /// True when the whole payload was consumed (trailing garbage is a
  /// version-mismatch symptom record decoders treat as corruption).
  [[nodiscard]] bool at_end() const { return ok_ && pos_ == data_.size(); }

 private:
  [[nodiscard]] bool take(std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- canonical binary codecs -------------------------------------------

/// Full design point (ν, χ): every field of model::NetworkConfig.
void write_config(ByteWriter& w, const model::NetworkConfig& cfg);
[[nodiscard]] bool read_config(ByteReader& r, model::NetworkConfig& cfg);

/// Full dse::Evaluation including the averaged SimResult detail
/// (per-node stats, medium stats, kernel event count), so a preloaded
/// result is indistinguishable from a freshly simulated one.
void write_evaluation(ByteWriter& w, const dse::Evaluation& ev);
[[nodiscard]] bool read_evaluation(ByteReader& r, dse::Evaluation& ev);

// --- fingerprints -------------------------------------------------------

/// Identity of an evaluation context; see the file comment.  Two
/// evaluators with equal fingerprints produce bit-identical Evaluations
/// for the same design point (common random numbers included), provided
/// `channel_tag` truthfully names the channel factory.
[[nodiscard]] Digest settings_fingerprint(const dse::EvaluatorSettings& s,
                                          std::string_view channel_tag);

/// Identity of the design space a campaign sweeps; see the file comment.
[[nodiscard]] Digest scenario_fingerprint(const model::Scenario& sc);

/// Identity of the explorer knobs that can change a cell's outcome:
/// the strategy itself, the budget, and the strategy's own parameters
/// (Algorithm 1: termination bound + kappa; annealing: seed, schedule,
/// penalty).  Threads, metrics, progress hooks, and MILP solver tuning
/// are excluded — results are bit-identical across those by contract.
[[nodiscard]] Digest options_fingerprint(const dse::ExplorationOptions& opt,
                                         dse::ExplorerKind kind);

// --- scenario JSON ------------------------------------------------------

/// Pretty-printed JSON form of a scenario; see the file comment.
[[nodiscard]] std::string scenario_to_json(const model::Scenario& sc);

/// Parses scenario_to_json output (field order free; unknown keys
/// rejected so typos fail loudly).  On failure returns nullopt and, when
/// `error` is non-null, a one-line description.
[[nodiscard]] std::optional<model::Scenario> scenario_from_json(
    std::string_view json, std::string* error = nullptr);

}  // namespace hi::store
