#include "store/record_log.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <bit>
#include <cerrno>
#include <cstring>
#include <vector>

#include "common/assert.hpp"
#include "store/serialize.hpp"

namespace hi::store {

namespace {

constexpr char kMagic[8] = {'H', 'I', 'S', 'T', 'O', 'R', 'E', 'L'};
constexpr std::size_t kFileHeaderBytes = 12;  // magic + u32 version
constexpr std::size_t kFrameHeaderBytes = 12; // len + payload crc + header crc

std::uint32_t load_u32(const char* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof v);  // little-endian host (asserted below)
  return v;
}

void store_u32(char* p, std::uint32_t v) { std::memcpy(p, &v, sizeof v); }

static_assert(std::endian::native == std::endian::little,
              "record log assumes a little-endian host");

/// Reads the whole file; short reads only at EOF.
std::vector<char> read_all(int fd) {
  std::vector<char> buf;
  char chunk[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    HI_REQUIRE(n >= 0, "record log read failed: " << std::strerror(errno));
    if (n == 0) break;
    buf.insert(buf.end(), chunk, chunk + n);
  }
  return buf;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  // Table-driven CRC-32 (IEEE, reflected); the table is built once.
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = 0xFFFFFFFFu;
  for (char ch : data) {
    c = table[(c ^ static_cast<std::uint8_t>(ch)) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

const char* to_string(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kNone: return "none";
    case FsyncPolicy::kCheckpoint: return "checkpoint";
    case FsyncPolicy::kAlways: return "always";
  }
  return "?";
}

const char* to_string(OpenMode m) {
  switch (m) {
    case OpenMode::kReadWrite: return "read-write";
    case OpenMode::kReadOnly: return "read-only";
  }
  return "?";
}

RecordLog::RecordLog(const std::string& path, const RecordFn& on_record,
                     const RecordLogOptions& options)
    : path_(path), options_(options) {
  const bool read_only = options_.mode == OpenMode::kReadOnly;
  obs::MetricsRegistry* metrics = options_.metrics;
  const int flags = read_only ? O_RDONLY : O_RDWR | O_CREAT;
  fd_ = ::open(path.c_str(), flags, 0644);
  HI_REQUIRE(fd_ >= 0, "cannot open store log '" << path
                           << "': " << std::strerror(errno));
  const std::vector<char> data = read_all(fd_);

  // File header: an empty file gets one written (write mode); anything
  // non-empty must carry the exact magic + version — refusing to touch a
  // foreign file beats silently clearing it.
  if (data.empty()) {
    HI_REQUIRE(!read_only, "store log '" << path << "' does not exist");
    char header[kFileHeaderBytes];
    std::memcpy(header, kMagic, sizeof kMagic);
    store_u32(header + sizeof kMagic, kFormatVersion);
    HI_REQUIRE(::write(fd_, header, sizeof header) ==
                   static_cast<ssize_t>(sizeof header),
               "store log header write failed: " << std::strerror(errno));
    end_ = kFileHeaderBytes;
    return;
  }
  HI_REQUIRE(data.size() >= kFileHeaderBytes &&
                 std::memcmp(data.data(), kMagic, sizeof kMagic) == 0,
             "'" << path << "' is not a hi::store record log");
  const std::uint32_t version = load_u32(data.data() + sizeof kMagic);
  HI_REQUIRE(version == kFormatVersion,
             "store log '" << path << "' has format version " << version
                           << "; this build reads version " << kFormatVersion);

  // Frame scan; see record_log.hpp for the recovery taxonomy.
  std::size_t pos = kFileHeaderBytes;
  std::size_t keep = pos;  // first byte past the last intact frame
  while (pos < data.size()) {
    const std::size_t rem = data.size() - pos;
    if (rem < kFrameHeaderBytes) {
      recovery_.tail_truncated = true;  // torn header
      break;
    }
    const std::uint32_t header_crc = load_u32(data.data() + pos + 8);
    if (crc32({data.data() + pos, 8}) != header_crc) {
      recovery_.corrupt_dropped += 1;  // framing lost: drop the rest
      recovery_.desynced = true;
      break;
    }
    const std::uint32_t len = load_u32(data.data() + pos);
    if (len > kMaxPayloadBytes) {
      recovery_.corrupt_dropped += 1;
      recovery_.desynced = true;
      break;
    }
    if (kFrameHeaderBytes + len > rem) {
      recovery_.tail_truncated = true;  // torn payload
      break;
    }
    const std::string_view payload(data.data() + pos + kFrameHeaderBytes, len);
    const std::uint32_t payload_crc = load_u32(data.data() + pos + 4);
    if (crc32(payload) != payload_crc) {
      recovery_.corrupt_dropped += 1;  // header intact: skip just this frame
    } else {
      if (on_record) {
        on_record(static_cast<std::uint64_t>(pos), payload);
      }
      recovery_.records += 1;
    }
    pos += kFrameHeaderBytes + len;
    keep = pos;
  }
  recovery_.truncated_bytes = data.size() - keep;
  end_ = keep;
  if (!read_only && recovery_.truncated_bytes > 0) {
    HI_REQUIRE(::ftruncate(fd_, static_cast<off_t>(keep)) == 0,
               "store log recovery truncate failed: "
                   << std::strerror(errno));
  }
  if (metrics != nullptr) {
    if (recovery_.tail_truncated || recovery_.desynced) {
      metrics->counter("store.recovered").add(1);
    }
    metrics->counter("store.corrupt_dropped").add(recovery_.corrupt_dropped);
  }
}

RecordLog::~RecordLog() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

std::uint64_t RecordLog::append(std::string_view payload) {
  HI_REQUIRE(!read_only(), "append() on a read-only store log");
  HI_REQUIRE(payload.size() <= kMaxPayloadBytes,
             "store record of " << payload.size() << " bytes exceeds the "
                                << kMaxPayloadBytes << "-byte frame limit");
  std::string frame(kFrameHeaderBytes, '\0');
  store_u32(frame.data(), static_cast<std::uint32_t>(payload.size()));
  store_u32(frame.data() + 4, crc32(payload));
  store_u32(frame.data() + 8, crc32({frame.data(), 8}));
  frame.append(payload);

  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t offset = end_;
  // One positioned write per frame: concurrent appenders interleave
  // whole frames, and a crash leaves at most one torn frame at the tail.
  std::size_t written = 0;
  while (written < frame.size()) {
    const ssize_t n =
        ::pwrite(fd_, frame.data() + written, frame.size() - written,
                 static_cast<off_t>(end_ + written));
    HI_REQUIRE(n > 0, "store log append failed: " << std::strerror(errno));
    written += static_cast<std::size_t>(n);
  }
  end_ += frame.size();
  if (options_.fsync == FsyncPolicy::kAlways) {
    HI_REQUIRE(::fsync(fd_) == 0,
               "store log fsync failed: " << std::strerror(errno));
  }
  return offset;
}

std::uint64_t RecordLog::append_checkpoint(std::string_view payload) {
  const std::uint64_t offset = append(payload);
  // kAlways already synced inside append(); kNone opts out entirely.
  if (options_.fsync == FsyncPolicy::kCheckpoint) {
    sync();
  }
  return offset;
}

void RecordLog::sync() {
  HI_REQUIRE(::fsync(fd_) == 0,
             "store log fsync failed: " << std::strerror(errno));
}

std::uint64_t RecordLog::size_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return end_;
}

}  // namespace hi::store
