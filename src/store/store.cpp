#include "store/store.hpp"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/assert.hpp"

namespace hi::store {

namespace {

/// Record type tags (first payload byte).  Append-only: new kinds get
/// new tags; unknown tags are treated as corruption, because the format
/// version in the file header already gates incompatible readers.
constexpr std::uint8_t kEvalRecord = 1;
constexpr std::uint8_t kCellRecord = 2;

std::string encode_eval(const Digest& settings_fp,
                        const model::NetworkConfig& cfg,
                        const dse::Evaluation& ev) {
  ByteWriter w;
  w.put_u8(kEvalRecord);
  w.put_digest(settings_fp);
  write_config(w, cfg);
  write_evaluation(w, ev);
  return w.take();
}

std::string encode_cell(const CellKey& key, const CellResult& res) {
  ByteWriter w;
  w.put_u8(kCellRecord);
  w.put_digest(key.scenario_fp);
  w.put_digest(key.settings_fp);
  w.put_digest(key.options_fp);
  w.put_f64(key.pdr_min);
  w.put_bool(res.feasible);
  write_config(w, res.best);
  w.put_f64(res.best_power_mw);
  w.put_f64(res.best_pdr);
  w.put_f64(res.best_nlt_s);
  w.put_u64(res.simulations);
  w.put_i32(res.iterations);
  return w.take();
}

}  // namespace

EvalStore::EvalStore(std::string path, StoreOptions opt)
    : opt_(std::move(opt)) {
  std::uint64_t decode_failures = 0;
  RecordLogOptions log_opt;
  log_opt.mode = opt_.read_only ? OpenMode::kReadOnly : OpenMode::kReadWrite;
  log_opt.fsync = opt_.fsync;
  log_opt.metrics = opt_.metrics;
  log_ = std::make_unique<RecordLog>(
      path,
      [this, &decode_failures](std::uint64_t offset,
                               std::string_view payload) {
        ByteReader r(payload);
        const std::uint8_t type = r.get_u8();
        bool ok = false;
        if (type == kEvalRecord) {
          const Digest fp = r.get_digest();
          StoredEval se;
          ok = read_config(r, se.cfg) && read_evaluation(r, se.ev) &&
               r.at_end();
          if (ok) {
            // Later duplicates (e.g. two concurrent campaigns racing on
            // the same miss) supersede earlier ones: identical content
            // by construction, and compaction keeps only the survivor.
            evals_.insert_or_assign(EvalKey{fp, se.cfg.design_key()},
                                    std::pair{std::move(se), offset});
          }
        } else if (type == kCellRecord) {
          CellKey key;
          key.scenario_fp = r.get_digest();
          key.settings_fp = r.get_digest();
          key.options_fp = r.get_digest();
          key.pdr_min = r.get_f64();
          CellResult res;
          res.feasible = r.get_bool();
          ok = read_config(r, res.best);
          res.best_power_mw = r.get_f64();
          res.best_pdr = r.get_f64();
          res.best_nlt_s = r.get_f64();
          res.simulations = r.get_u64();
          res.iterations = r.get_i32();
          ok = ok && r.at_end();
          if (ok) {
            cells_.insert_or_assign(key, std::pair{res, offset});
          }
        }
        if (!ok) {
          ++decode_failures;  // CRC-valid but undecodable: corrupt
        }
      },
      log_opt);
  recovery_ = log_->recovery();
  recovery_.records -= decode_failures;
  recovery_.corrupt_dropped += decode_failures;
  if (opt_.metrics != nullptr && decode_failures > 0) {
    opt_.metrics->counter("store.corrupt_dropped").add(decode_failures);
  }
  if (opt_.metrics != nullptr) {
    opt_.metrics->counter("store.records_loaded").add(recovery_.records);
  }
}

const dse::Evaluation* EvalStore::find(const Digest& settings_fp,
                                       const model::NetworkConfig& cfg) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = evals_.find(EvalKey{settings_fp, cfg.design_key()});
  if (it == evals_.end()) {
    return nullptr;
  }
  HI_REQUIRE(it->second.first.cfg == cfg,
             "design_key collision in store '"
                 << log_->path() << "': key " << cfg.design_key()
                 << " maps both " << it->second.first.cfg.label() << " and "
                 << cfg.label()
                 << " — the stored result would be wrong for one of them");
  return &it->second.first.ev;
}

bool EvalStore::put(const Digest& settings_fp, const model::NetworkConfig& cfg,
                    const dse::Evaluation& ev) {
  std::lock_guard<std::mutex> lock(mu_);
  const EvalKey key{settings_fp, cfg.design_key()};
  if (const auto it = evals_.find(key); it != evals_.end()) {
    HI_REQUIRE(it->second.first.cfg == cfg,
               "design_key collision in store '" << log_->path() << "' on put("
                   << cfg.label() << ")");
    return false;  // idempotent: already stored
  }
  // The log enforces the fsync policy itself (kAlways syncs in append).
  const std::uint64_t offset = log_->append(encode_eval(settings_fp, cfg, ev));
  if (opt_.metrics != nullptr) {
    opt_.metrics->counter("store.evals_appended").add(1);
  }
  evals_.emplace(key, std::pair{StoredEval{cfg, ev}, offset});
  return true;
}

std::size_t EvalStore::eval_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evals_.size();
}

std::optional<CellResult> EvalStore::find_cell(const CellKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = cells_.find(key);
  if (it == cells_.end()) {
    return std::nullopt;
  }
  return it->second.first;
}

void EvalStore::put_cell(const CellKey& key, const CellResult& result) {
  std::lock_guard<std::mutex> lock(mu_);
  // A checkpoint must never be durable without its evaluations;
  // append_checkpoint's sync covers every frame appended before it.
  const std::uint64_t offset = log_->append_checkpoint(encode_cell(key, result));
  if (opt_.metrics != nullptr) {
    opt_.metrics->counter("store.cells_appended").add(1);
  }
  cells_.insert_or_assign(key, std::pair{result, offset});
}

std::size_t EvalStore::cell_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cells_.size();
}

void EvalStore::sync() { log_->sync(); }

std::size_t EvalStore::preload_into(dse::Evaluator& eval,
                                    const Digest& settings_fp) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (auto it = evals_.lower_bound(EvalKey{settings_fp, 0});
       it != evals_.end() && it->first.first == settings_fp; ++it) {
    if (eval.preload(it->second.first.cfg, it->second.first.ev)) {
      ++n;
    }
  }
  return n;
}

void EvalStore::for_each_eval(
    const std::function<void(const Digest&, const model::NetworkConfig&,
                             const dse::Evaluation&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, value] : evals_) {
    fn(key.first, value.first.cfg, value.first.ev);
  }
}

void EvalStore::for_each_cell(
    const std::function<void(const CellKey&, const CellResult&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, value] : cells_) {
    fn(key, value.first);
  }
}

EvalStore::MergeStats EvalStore::merge(
    const std::vector<std::string>& shard_paths, const std::string& out_path) {
  MergeStats stats;
  const std::string tmp = out_path + ".merging";
  std::remove(tmp.c_str());
  {
    StoreOptions out_opt;
    out_opt.fsync = FsyncPolicy::kNone;  // one sync() before the rename
    EvalStore out(tmp, out_opt);
    for (const std::string& shard : shard_paths) {
      HI_REQUIRE(shard != out_path,
                 "merge output '" << out_path << "' is also a shard input");
      ShardMergeStats ss;
      ss.path = shard;
      struct ::stat st{};
      if (::stat(shard.c_str(), &st) != 0) {
        stats.shards.push_back(std::move(ss));  // absent: skip, keep the row
        continue;
      }
      ss.present = true;
      // Read-only: a live writer's half-appended tail frame (or real
      // corruption) is classified and skipped, never repaired here.
      const EvalStore in(shard, StoreOptions{.read_only = true});
      ss.records = in.recovery_.records;
      ss.corrupt_dropped = in.recovery_.corrupt_dropped;
      ss.tail_truncated = in.recovery_.tail_truncated;
      ss.desynced = in.recovery_.desynced;
      in.for_each_eval([&](const Digest& fp, const model::NetworkConfig& cfg,
                           const dse::Evaluation& ev) {
        if (out.put(fp, cfg, ev)) {
          ++ss.evals_added;
        } else {
          ++ss.duplicate_evals;  // another shard already paid for it
        }
      });
      in.for_each_cell([&](const CellKey& key, const CellResult& res) {
        if (out.find_cell(key)) {
          // A checkpoint for this cell already merged (a stolen row's
          // re-run): identical summary, keep the single frame.
          ++ss.superseded_cells;
        } else {
          ++ss.cells_added;
          out.put_cell(key, res);
        }
      });
      stats.duplicate_evals += ss.duplicate_evals;
      stats.superseded_cells += ss.superseded_cells;
      stats.shards.push_back(std::move(ss));
    }
    stats.evals = out.eval_count();
    stats.cells = out.cell_count();
    stats.frames = stats.evals + stats.cells;
    out.sync();
  }
  HI_REQUIRE(std::rename(tmp.c_str(), out_path.c_str()) == 0,
             "shard merge rename failed: " << std::strerror(errno));
  return stats;
}

EvalStore::CompactStats EvalStore::compact(const std::string& path) {
  CompactStats stats;
  // Read the current state (recovery included) ...
  EvalStore old(path, StoreOptions{.read_only = true});
  stats.records_before = old.recovery_.records;
  stats.bytes_before = old.log_->size_bytes() + old.recovery_.truncated_bytes;
  // ... rewrite the live records into a fresh log ...
  const std::string tmp = path + ".compacting";
  std::remove(tmp.c_str());
  {
    RecordLog fresh(tmp, nullptr,
                    {.mode = OpenMode::kReadWrite, .fsync = FsyncPolicy::kNone});
    for (const auto& [key, value] : old.evals_) {
      fresh.append(encode_eval(key.first, value.first.cfg, value.first.ev));
    }
    for (const auto& [key, value] : old.cells_) {
      fresh.append(encode_cell(key, value.first));
    }
    fresh.sync();
    stats.records_after = old.evals_.size() + old.cells_.size();
    stats.bytes_after = fresh.size_bytes();
  }
  // ... and atomically swap it in.
  HI_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
             "store compaction rename failed: " << std::strerror(errno));
  return stats;
}

RecoveryStats EvalStore::audit(const std::string& path) {
  const EvalStore probe(path, StoreOptions{.read_only = true});
  return probe.recovery_;
}

WarmStartStats warm_start(dse::Evaluator& eval, EvalStore& store) {
  WarmStartStats out;
  out.settings_fp = settings_fingerprint(eval.settings(), store.channel_tag());
  out.preloaded = store.preload_into(eval, out.settings_fp);
  const Digest fp = out.settings_fp;
  eval.set_store_sink([&store, fp](const model::NetworkConfig& cfg,
                                   const dse::Evaluation& ev) {
    store.put(fp, cfg, ev);
  });
  return out;
}

WarmStartStats warm_start(dse::Evaluator& eval, EvalStore& store,
                          int realizations) {
  HI_REQUIRE(realizations >= 1,
             "warm_start needs >= 1 realization, got " << realizations);
  WarmStartStats out = warm_start(eval, store);
  for (int k = 1; k < realizations; ++k) {
    dse::Evaluator& child = eval.realization(k);
    const Digest fp =
        settings_fingerprint(child.settings(), store.channel_tag());
    out.preloaded += store.preload_into(child, fp);
    child.set_store_sink([&store, fp](const model::NetworkConfig& cfg,
                                      const dse::Evaluation& ev) {
      store.put(fp, cfg, ev);
    });
    ++out.realizations;
  }
  return out;
}

}  // namespace hi::store
