// hi-opt: the crash-safe append-only record log under hi::store.
//
// On-disk layout (little-endian):
//
//   file   : magic "HISTOREL" (8 bytes) | u32 format version
//   frame  : u32 payload_len | u32 payload_crc32 | u32 header_crc32
//            | payload bytes
//
// header_crc32 covers the first 8 header bytes, so a flipped bit in the
// length field is detected *before* the length is trusted — the one
// corruption that could desynchronize length-prefixed framing.
//
// Recovery (performed by open(), write mode only; read-only opens report
// but never mutate):
//
//   torn tail     fewer bytes than a frame header, or a payload shorter
//                 than its length field, at end of file — the classic
//                 kill -9 / power-cut artifact.  The partial frame is
//                 truncated away so the log ends on a clean boundary;
//                 counted once per open in `store.recovered`.
//   corrupt       payload CRC mismatch with an intact header: the frame
//   payload       is skipped (framing is still trustworthy) and counted
//                 in `store.corrupt_dropped`; later records survive.
//   corrupt       header CRC mismatch, or an insane length: the frame
//   header        boundary itself is gone, so everything from this
//                 offset on is dropped (longest valid prefix), counted
//                 once in `store.corrupt_dropped`, and truncated so
//                 appends restart on a clean boundary.
//   bad file      wrong magic or format version on a non-empty file:
//   header        open() refuses (HI_REQUIRE) — silently clearing a
//                 foreign or future-format file would destroy data.
//
// Appends are a single write(2) per frame and are mutex-serialized, so
// concurrent writers (parallel campaign cells) interleave whole frames.
// Durability: after append() returns, the frame is in the page cache —
// it survives the *process* dying (SIGKILL included); surviving a
// *machine* crash additionally needs sync(), which the store invokes
// according to its FsyncPolicy.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace hi::store {

/// When the log fsyncs; see the file comment for what each level
/// guarantees.  kCheckpoint syncs on append_checkpoint() only — the
/// store routes campaign-cell completion records through it.
enum class FsyncPolicy {
  kNone,        ///< never fsync (page cache only; fastest)
  kCheckpoint,  ///< fsync on checkpoint records (the default)
  kAlways,      ///< fsync every append
};

[[nodiscard]] const char* to_string(FsyncPolicy p);

/// How a log is opened.  Read-only opens scan and report damage but
/// never mutate the file (no creation, no recovery truncation).
enum class OpenMode {
  kReadWrite,  ///< create if absent; truncate away recovered damage
  kReadOnly,   ///< the file must exist; classification only
};

[[nodiscard]] const char* to_string(OpenMode m);

/// Everything an open needs besides the path and the record callback.
/// A named-options struct instead of positional bools, so call sites
/// read as `{.mode = OpenMode::kReadOnly}` rather than `(…, true, …)`.
struct RecordLogOptions {
  OpenMode mode = OpenMode::kReadWrite;
  /// Durability policy the log itself enforces: kAlways syncs inside
  /// every append(); kCheckpoint syncs inside append_checkpoint();
  /// kNone never syncs (callers may still sync() explicitly).
  FsyncPolicy fsync = FsyncPolicy::kCheckpoint;
  /// Nullable; receives the `store.recovered` / `store.corrupt_dropped`
  /// recovery counters.
  obs::MetricsRegistry* metrics = nullptr;
};

/// What open() found and fixed; see the file comment.
struct RecoveryStats {
  std::uint64_t records = 0;          ///< valid records delivered
  std::uint64_t corrupt_dropped = 0;  ///< frames dropped for corruption
  bool tail_truncated = false;        ///< a torn trailing frame was cut
  bool desynced = false;              ///< framing lost mid-file; tail cut
  std::uint64_t truncated_bytes = 0;  ///< bytes removed (or, read-only,
                                      ///< that would be removed)
  [[nodiscard]] bool clean() const {
    return corrupt_dropped == 0 && !tail_truncated && !desynced;
  }
};

/// See file comment.
class RecordLog {
 public:
  using RecordFn =
      std::function<void(std::uint64_t offset, std::string_view payload)>;

  /// Opens (creating if absent in kReadWrite mode) and scans the whole
  /// log, invoking `on_record` for every valid payload in file order.
  /// Recovery truncation happens here, in kReadWrite mode only.
  RecordLog(const std::string& path, const RecordFn& on_record,
            const RecordLogOptions& options = {});
  ~RecordLog();

  RecordLog(const RecordLog&) = delete;
  RecordLog& operator=(const RecordLog&) = delete;

  /// Appends one framed record; returns its file offset.  Thread-safe.
  /// Under FsyncPolicy::kAlways the frame is fsynced before returning.
  std::uint64_t append(std::string_view payload);

  /// Appends a record that marks prior appends as durable: under
  /// kCheckpoint and kAlways, the frame — and every frame appended
  /// before it — is fsynced before returning, so a checkpoint can never
  /// outlive on disk the records it summarizes.  kNone skips the sync.
  std::uint64_t append_checkpoint(std::string_view payload);

  /// fsync(2); blocks until every appended frame is on stable storage.
  void sync();

  [[nodiscard]] const RecoveryStats& recovery() const { return recovery_; }
  [[nodiscard]] bool read_only() const {
    return options_.mode == OpenMode::kReadOnly;
  }
  [[nodiscard]] FsyncPolicy fsync_policy() const { return options_.fsync; }
  [[nodiscard]] const std::string& path() const { return path_; }
  /// Current end-of-log offset (== file size after recovery).
  [[nodiscard]] std::uint64_t size_bytes() const;

  /// Largest payload a frame may carry; longer appends are a caller bug
  /// (HI_REQUIRE) and longer lengths on disk are treated as corruption.
  static constexpr std::uint32_t kMaxPayloadBytes = 1u << 24;

 private:
  std::string path_;
  RecordLogOptions options_;
  int fd_ = -1;
  std::uint64_t end_ = 0;  ///< append offset, guarded by mu_
  RecoveryStats recovery_;
  mutable std::mutex mu_;
};

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `data` — the checksum
/// the frame header carries.  Exposed for tests and the corruption
/// fuzzer, which forge frames byte by byte.
[[nodiscard]] std::uint32_t crc32(std::string_view data);

}  // namespace hi::store
