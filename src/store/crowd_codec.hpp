// hi-opt: durable identity + JSON interchange for crowd scenarios.
//
// A crowd sweep is resumable through the same EvalStore machinery as a
// campaign: each sweep point (one body count M) is keyed by
// crowd_point_fingerprint() — which covers the scenario, the simulation
// settings, and the replication count — playing the role
// settings_fingerprint() plays for single-body evaluations, with the
// per-body NetworkConfig as the stored design point.  Because M is part
// of the fingerprint, the same config evaluated at different crowd
// sizes lands in distinct store cells.
//
// crowd_scenario_to_json / crowd_scenario_from_json are the
// "hi-crowd-scenario-v1" interchange form, so a sweep definition can
// live next to its store (hi_crowd --scenario / --dump-scenario).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "model/crowd.hpp"
#include "net/network.hpp"
#include "store/serialize.hpp"

namespace hi::store {

/// Identity of the crowd scenario itself: per-body config, body count,
/// placement (explicit or grid knobs), and the inter-body propagation
/// model.  Canonical over the *effective* positions, so a grid scenario
/// and the equivalent explicit placement fingerprint identically.
[[nodiscard]] Digest crowd_fingerprint(const model::CrowdScenario& sc);

/// Store key for one sweep point: scenario identity + everything the
/// simulation outcome depends on (Tsim, guard, seed roots, capture
/// threshold, CSMA timing, replication count).  Two sweeps with equal
/// point fingerprints produce bit-identical per-point results.
[[nodiscard]] Digest crowd_point_fingerprint(const model::CrowdScenario& sc,
                                             const net::SimParams& sim,
                                             int runs);

/// Pretty-printed "hi-crowd-scenario-v1" JSON.
[[nodiscard]] std::string crowd_scenario_to_json(
    const model::CrowdScenario& sc);

/// Parses crowd_scenario_to_json output (field order free; unknown keys
/// rejected).  Serialize → parse is a fixed point and fingerprints
/// survive the trip.
[[nodiscard]] std::optional<model::CrowdScenario> crowd_scenario_from_json(
    std::string_view json, std::string* error = nullptr);

}  // namespace hi::store
