// hi-opt: hi::store — the durable evaluation store.
//
// Algorithm 1's entire economy is "never pay for the same simulation
// twice"; the in-memory Evaluator cache enforces that within a process,
// and EvalStore extends it across processes and crashes.  Two record
// kinds live in one append-only RecordLog (record_log.hpp):
//
//   evaluation   (settings fingerprint, design point) → Evaluation.
//                Keyed by the SHA-256 settings_fingerprint, so results
//                only flow between evaluators with identical Tsim /
//                seeds / replication counts / channel; the canonical
//                config rides along and is re-verified on every hit, so
//                a 64-bit design_key() collision fails loudly instead of
//                aliasing two design points across processes.
//
//   cell         one completed campaign cell (scenario × PDRmin ×
//                explorer × options) → its ExplorationResult summary.
//                hi_campaign checkpoints each finished cell and
//                `--resume` skips checkpointed cells with zero
//                re-simulation.
//
// The store keeps every decoded record in memory (a design space is
// thousands of points, not millions) plus an offset index into the log;
// compact() is the offline pass that rewrites a log dropping superseded
// duplicates and corrupt frames.  All member functions are thread-safe —
// parallel campaign cells share one store.
//
// Warm start (warm_start()): preload every matching evaluation into a
// dse::Evaluator and install a write-through sink so fresh simulations
// are appended as they happen.  Contracts preserved (and tested by
// hi::check's warm-start determinism property):
//   * bit-identical to cold — a warmed run returns exactly the optima,
//     history, and per-layer counters a cold run would, because stored
//     Evaluations are exact bit copies of prior results under the same
//     settings fingerprint;
//   * reference stability — preloading inserts into the evaluator's
//     node-based cache before the run, and write-through never touches
//     the cache;
//   * honest accounting — store-served points count in dse.store_hits,
//     not dse.simulations, so a warmed run reports
//     simulations == (cold total − store hits).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "dse/evaluator.hpp"
#include "store/record_log.hpp"
#include "store/serialize.hpp"

namespace hi::store {

/// Store configuration.
struct StoreOptions {
  bool read_only = false;
  FsyncPolicy fsync = FsyncPolicy::kCheckpoint;
  /// Names the channel factory for the settings fingerprint (a
  /// std::function cannot be hashed).  Callers evaluating under a
  /// non-default channel MUST set a distinct tag, or stored results
  /// would leak between incompatible channels.
  std::string channel_tag = "default";
  /// Nullable; receives store.* counters (see DESIGN.md §8/§10).
  obs::MetricsRegistry* metrics = nullptr;
};

/// Identity of one campaign cell; every field participates in the
/// checkpoint key, so changing any sweep knob re-runs the cell.
struct CellKey {
  Digest scenario_fp;  ///< scenario_fingerprint()
  Digest settings_fp;  ///< settings_fingerprint()
  Digest options_fp;   ///< options_fingerprint()
  double pdr_min = 0.9;

  friend bool operator==(const CellKey&, const CellKey&) = default;
  friend auto operator<=>(const CellKey& a, const CellKey& b) {
    return std::tie(a.scenario_fp, a.settings_fp, a.options_fp, a.pdr_min) <=>
           std::tie(b.scenario_fp, b.settings_fp, b.options_fp, b.pdr_min);
  }
};

/// The durable summary of a completed cell (ExplorationResult minus the
/// history, which the evaluation records already carry).
struct CellResult {
  bool feasible = false;
  model::NetworkConfig best;
  double best_power_mw = 0.0;
  double best_pdr = 0.0;
  double best_nlt_s = 0.0;
  std::uint64_t simulations = 0;  ///< fresh simulations the cell paid for
  std::int32_t iterations = 0;
};

/// See file comment.
class EvalStore {
 public:
  /// Opens (write mode creates) and recovers the log at `path`.
  explicit EvalStore(std::string path, StoreOptions opt = {});

  /// What recovery found at open; clean() means no repair was needed.
  [[nodiscard]] const RecoveryStats& recovery() const { return recovery_; }
  [[nodiscard]] const std::string& channel_tag() const {
    return opt_.channel_tag;
  }
  [[nodiscard]] const std::string& path() const { return log_->path(); }

  /// The stored evaluation for (fp, cfg), or null.  A design_key match
  /// with a different canonical config fails loudly (collision guard).
  [[nodiscard]] const dse::Evaluation* find(const Digest& settings_fp,
                                            const model::NetworkConfig& cfg)
      const;

  /// Appends one evaluation record (idempotent: an existing identical
  /// key is left alone and not re-appended).  Returns true if appended.
  bool put(const Digest& settings_fp, const model::NetworkConfig& cfg,
           const dse::Evaluation& ev);

  /// Number of evaluation records held (across all fingerprints).
  [[nodiscard]] std::size_t eval_count() const;

  [[nodiscard]] std::optional<CellResult> find_cell(const CellKey& key) const;

  /// Appends (or supersedes) a cell checkpoint.  Under
  /// FsyncPolicy::kCheckpoint and kAlways the record — and every
  /// evaluation appended before it — is fsynced before returning, so a
  /// cell marked complete never outlives its evaluations on disk.
  void put_cell(const CellKey& key, const CellResult& result);

  [[nodiscard]] std::size_t cell_count() const;

  /// Blocks until every append so far is on stable storage.
  void sync();

  /// Preloads every evaluation stored under `settings_fp` into the
  /// evaluator (dse::Evaluator::preload) and returns how many were
  /// inserted.  Prefer warm_start(), which also wires write-through.
  std::size_t preload_into(dse::Evaluator& eval,
                           const Digest& settings_fp) const;

  /// Visits every stored evaluation / cell checkpoint, in key order,
  /// under the store lock — do not call back into the same store.
  /// These are the iteration primitives merge() and the campaign
  /// fabric's cross-shard scans are built on.
  void for_each_eval(
      const std::function<void(const Digest& settings_fp,
                               const model::NetworkConfig& cfg,
                               const dse::Evaluation& ev)>& fn) const;
  void for_each_cell(
      const std::function<void(const CellKey& key, const CellResult& res)>&
          fn) const;

  /// Offline compaction outcome.
  struct CompactStats {
    std::uint64_t records_before = 0;  ///< valid records in the old log
    std::uint64_t records_after = 0;   ///< records in the rewritten log
    std::uint64_t bytes_before = 0;
    std::uint64_t bytes_after = 0;
  };

  /// Rewrites the log at `path` keeping the latest record per key —
  /// superseded duplicates, skipped-corrupt frames, and any recovered
  /// tail damage are gone afterwards.  Offline: no EvalStore may have
  /// the file open.  Crash-safe (writes a temp file, fsyncs, renames).
  static CompactStats compact(const std::string& path);

  /// Read-only integrity scan: recovery stats for the log as it is on
  /// disk, file untouched.  clean() == byte-valid store.
  static RecoveryStats audit(const std::string& path);

  /// What merge() found in (and kept from) one shard log.
  struct ShardMergeStats {
    std::string path;
    bool present = false;  ///< the file existed (absent shards are skipped)
    std::uint64_t records = 0;           ///< valid records decoded
    std::uint64_t evals_added = 0;       ///< evaluations new to the merge
    std::uint64_t cells_added = 0;       ///< cell checkpoints new to it
    std::uint64_t duplicate_evals = 0;   ///< eval key already merged
    std::uint64_t superseded_cells = 0;  ///< cell checkpoint replaced
    std::uint64_t corrupt_dropped = 0;   ///< frames dropped (CRC/decode)
    bool tail_truncated = false;         ///< shard ended on a torn frame
    bool desynced = false;               ///< framing lost mid-shard
  };

  /// Fleet-level outcome of merge().
  struct MergeStats {
    std::vector<ShardMergeStats> shards;
    std::uint64_t evals = 0;   ///< distinct evaluations in the merged log
    std::uint64_t cells = 0;   ///< distinct cell checkpoints in it
    std::uint64_t frames = 0;  ///< frames written (== evals + cells)
    std::uint64_t duplicate_evals = 0;   ///< Σ shard duplicates
    std::uint64_t superseded_cells = 0;  ///< Σ shard supersedes
    /// True when every present shard was byte-valid (a torn tail or a
    /// corrupt frame in one shard still merges the rest of that shard
    /// and every other shard in full, but is not "clean").
    [[nodiscard]] bool clean() const {
      for (const ShardMergeStats& s : shards) {
        if (s.corrupt_dropped > 0 || s.tail_truncated || s.desynced) {
          return false;
        }
      }
      return true;
    }
  };

  /// Folds shard logs into one canonical store at `out_path`
  /// (crash-safe: temp file, fsync, rename).  Shards are opened
  /// read-only — a live writer or a torn/bit-flipped frame in any
  /// single shard costs only the damaged frames of that shard; every
  /// other record still merges.  Duplicate evaluations (two shards
  /// paid for the same design point — identical bits by the common-
  /// random-numbers contract) and duplicate cell checkpoints (a stolen
  /// row re-checkpointed) are folded to one record each, counted per
  /// shard.  Absent shard paths are recorded and skipped.  `out_path`
  /// must not name one of the shards.
  static MergeStats merge(const std::vector<std::string>& shard_paths,
                          const std::string& out_path);

 private:
  struct StoredEval {
    model::NetworkConfig cfg;
    dse::Evaluation ev;
  };
  /// Map key for evaluation records.  The design_key narrows the search;
  /// the canonical config in the mapped value is the ground truth.
  using EvalKey = std::pair<Digest, std::uint64_t>;

  StoreOptions opt_;
  std::unique_ptr<RecordLog> log_;
  RecoveryStats recovery_;  ///< log recovery + payload-decode failures
  // Decoded records + the offset index (value holds the log offset of
  // the record currently serving each key; compaction keeps the latest).
  std::map<EvalKey, std::pair<StoredEval, std::uint64_t>> evals_;
  std::map<CellKey, std::pair<CellResult, std::uint64_t>> cells_;
  mutable std::mutex mu_;
};

/// Outcome of warm_start().
struct WarmStartStats {
  Digest settings_fp;          ///< fingerprint the ROOT evaluator matched on
  std::size_t preloaded = 0;   ///< evaluations copied in, all realizations
  int realizations = 1;        ///< evaluators wired (root + children)
};

/// Preloads `eval` from `store` and installs a write-through sink; see
/// the file comment for the preserved contracts.  The store must outlive
/// the evaluator's use of the sink (i.e. the evaluator, in practice).
WarmStartStats warm_start(dse::Evaluator& eval, EvalStore& store);

/// Multi-realization warm start: additionally wires realizations
/// 1..realizations-1 of `eval` (see dse::Evaluator::realization), each
/// preloaded and write-through under its OWN settings fingerprint — a
/// realization differs from the root only by sim.channel_seed, which
/// settings_fingerprint covers, so per-(design, seed) records land in
/// distinct rows and robust campaigns resume with zero re-simulation.
WarmStartStats warm_start(dse::Evaluator& eval, EvalStore& store,
                          int realizations);

}  // namespace hi::store
