#include "common/assert.hpp"

namespace hi::detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::ostringstream oss;
  oss << "HI_ASSERT failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) {
    oss << " — " << msg;
  }
  throw InternalError(oss.str());
}

}  // namespace hi::detail
