// hi-opt: error handling primitives.
//
// The library throws `hi::Error` for contract violations that a caller can
// plausibly recover from (bad model input, infeasible dimensions) and uses
// HI_ASSERT for internal invariants.  Assertions stay enabled in release
// builds: all hot loops in this codebase are dominated by event handling,
// not by the checks.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hi {

/// Base exception for all hi-opt errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a user-supplied model/problem is malformed.
class ModelError : public Error {
 public:
  explicit ModelError(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant is violated (a bug in hi-opt itself).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);
}  // namespace detail

}  // namespace hi

/// Internal invariant check; enabled in all build types.
#define HI_ASSERT(expr)                                              \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::hi::detail::assert_fail(#expr, __FILE__, __LINE__, "");      \
    }                                                                \
  } while (false)

/// Internal invariant check with a streamed message:
///   HI_ASSERT_MSG(x > 0, "x=" << x);
#define HI_ASSERT_MSG(expr, stream_expr)                             \
  do {                                                               \
    if (!(expr)) {                                                   \
      std::ostringstream hi_assert_oss_;                             \
      hi_assert_oss_ << stream_expr;                                 \
      ::hi::detail::assert_fail(#expr, __FILE__, __LINE__,           \
                                hi_assert_oss_.str());               \
    }                                                                \
  } while (false)

/// Validates user input; throws hi::ModelError on failure.
#define HI_REQUIRE(expr, stream_expr)                                \
  do {                                                               \
    if (!(expr)) {                                                   \
      std::ostringstream hi_require_oss_;                            \
      hi_require_oss_ << stream_expr;                                \
      throw ::hi::ModelError(hi_require_oss_.str());                 \
    }                                                                \
  } while (false)
