// hi-opt: deterministic random number generation.
//
// All stochastic components (channel fading, CSMA backoff, packet jitter,
// simulated annealing) draw from hi::Rng so that every experiment is
// reproducible from a single 64-bit seed.  The generator is xoshiro256**,
// seeded through splitmix64; both are public-domain algorithms by
// Blackman & Vigna.  Independent substreams are derived with `fork()`,
// which hashes a stream label into a fresh seed, so adding a consumer of
// randomness to one module never perturbs the draws seen by another.
#pragma once

#include <cstdint>
#include <string_view>

namespace hi {

/// splitmix64 step; used for seeding and for hashing stream labels.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// Deterministic, forkable pseudo-random generator (xoshiro256**).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a 64-bit seed (expanded via splitmix64).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// UniformRandomBitGenerator interface.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next_u64(); }

  /// Next raw 64-bit draw.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n) for n > 0 (unbiased, via rejection).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal draw (Marsaglia polar method, cached spare).
  double normal();

  /// Normal draw with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential draw with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p);

  /// Derives an independent substream labelled `label`.  The same (seed,
  /// label) pair always yields the same substream.
  [[nodiscard]] Rng fork(std::string_view label) const;

  /// Derives an independent substream from an integer label.
  [[nodiscard]] Rng fork(std::uint64_t label) const;

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;  // retained so fork() can derive child seeds
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace hi
