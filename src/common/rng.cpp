#include "common/rng.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace hi {

namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// FNV-1a over a string, used to hash fork labels into seed material.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) {
    s = splitmix64(sm);
  }
  // xoshiro256** requires a nonzero state; splitmix64 cannot produce four
  // zero outputs in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 1;
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  HI_ASSERT_MSG(lo <= hi, "uniform(" << lo << "," << hi << ")");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  HI_ASSERT(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) {
      return r % n;
    }
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  HI_ASSERT(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // may wrap to 0 for full range
  if (span == 0) {
    return static_cast<std::int64_t>(next_u64());
  }
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) {
  HI_ASSERT(rate > 0.0);
  // 1 - uniform() is in (0,1], so the log argument is never zero.
  return -std::log(1.0 - uniform()) / rate;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::fork(std::string_view label) const {
  return fork(fnv1a(label));
}

Rng Rng::fork(std::uint64_t label) const {
  std::uint64_t sm = seed_ ^ (label * 0xD1B54A32D192ED03ULL + 0x632BE59BD9B4E019ULL);
  return Rng{splitmix64(sm)};
}

}  // namespace hi
