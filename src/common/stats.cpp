#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace hi {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (n_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const {
  if (n_ == 0) {
    return 0.0;
  }
  return stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  HI_REQUIRE(hi > lo, "Histogram range must be nonempty: [" << lo << ", " << hi
                                                            << ")");
  HI_REQUIRE(bins > 0, "Histogram needs at least one bin");
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(bins()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(bins()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::fraction(std::size_t i) const {
  if (total_ == 0) {
    return 0.0;
  }
  return static_cast<double>(count(i)) / static_cast<double>(total_);
}

double Histogram::bin_center(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(bins());
  return lo_ + width * (static_cast<double>(i) + 0.5);
}

double pearson_correlation(const std::vector<double>& a,
                           const std::vector<double>& b) {
  HI_REQUIRE(a.size() == b.size(),
             "pearson_correlation: size mismatch " << a.size() << " vs "
                                                   << b.size());
  if (a.empty()) {
    return 0.0;
  }
  RunningStats sa, sb;
  for (double x : a) sa.add(x);
  for (double x : b) sb.add(x);
  if (sa.stddev() == 0.0 || sb.stddev() == 0.0) {
    return 0.0;
  }
  double cov = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - sa.mean()) * (b[i] - sb.mean());
  }
  cov /= static_cast<double>(a.size() - 1);
  return cov / (sa.stddev() * sb.stddev());
}

}  // namespace hi
