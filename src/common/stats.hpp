// hi-opt: streaming statistics used by the simulator (PDR/power estimates
// averaged over runs) and by the benchmark harness.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace hi {

/// Welford's online mean/variance accumulator with min/max tracking.
class RunningStats {
 public:
  /// Adds a sample.
  void add(double x);

  /// Number of samples added.
  [[nodiscard]] std::size_t count() const { return n_; }

  /// Sample mean; 0 when empty.
  [[nodiscard]] double mean() const { return mean_; }

  /// Unbiased sample variance; 0 when fewer than two samples.
  [[nodiscard]] double variance() const;

  /// Unbiased sample standard deviation.
  [[nodiscard]] double stddev() const;

  /// Standard error of the mean (stddev / sqrt(n)); 0 when empty.
  [[nodiscard]] double stderr_mean() const;

  /// Smallest sample seen; +inf when empty.
  [[nodiscard]] double min() const { return min_; }

  /// Largest sample seen; -inf when empty.
  [[nodiscard]] double max() const { return max_; }

  /// Sum of all samples.
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bin histogram over [lo, hi); samples outside the range land in
/// the first/last bin.  Used by the channel-model validation tests.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  /// Adds a sample.
  void add(double x);

  /// Number of bins.
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }

  /// Count in bin i.
  [[nodiscard]] std::size_t count(std::size_t i) const { return counts_.at(i); }

  /// Total samples added.
  [[nodiscard]] std::size_t total() const { return total_; }

  /// Fraction of samples in bin i.
  [[nodiscard]] double fraction(std::size_t i) const;

  /// Center of bin i.
  [[nodiscard]] double bin_center(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Pearson correlation of two equally-sized sample vectors; used to check
/// the channel temporal-autocorrelation property.  Returns 0 if either
/// vector has zero variance.
[[nodiscard]] double pearson_correlation(const std::vector<double>& a,
                                         const std::vector<double>& b);

}  // namespace hi
