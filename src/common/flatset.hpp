// hi-opt: open-addressing hash set of 64-bit keys.
//
// Purpose-built replacement for std::unordered_set<uint64_t> on the
// simulator's dedup hot paths (routing seen/echoed sets): one flat
// power-of-two table, linear probing, no per-node allocation, no
// iterator surface.  Keys are stored biased by +1 so the all-zero
// freshly-allocated table means "all empty"; key UINT64_MAX is
// therefore not storable (asserted), which the packet key()
// (origin<<32 | seq) can never produce.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace hi {

/// See file comment.  Insert-only membership set (no erase — the
/// simulator's dedup sets only ever grow within a run).
class FlatSet64 {
 public:
  /// `expected` sizes the initial table to avoid growth churn.
  explicit FlatSet64(std::size_t expected = 16) {
    std::size_t cap = 16;
    while (cap * 10 < expected * 16) cap <<= 1;  // keep load below ~0.625
    slots_.resize(cap, 0);
  }

  /// Inserts `key`; returns true when it was not already present
  /// (mirrors unordered_set::insert().second).
  bool insert(std::uint64_t key) {
    HI_ASSERT_MSG(key != ~0ull, "FlatSet64 cannot store UINT64_MAX");
    if ((size_ + 1) * 10 >= slots_.size() * 7) grow();
    const std::uint64_t biased = key + 1;
    std::size_t i = probe_start(key);
    while (slots_[i] != 0) {
      if (slots_[i] == biased) return false;
      i = (i + 1) & (slots_.size() - 1);
    }
    slots_[i] = biased;
    ++size_;
    return true;
  }

  /// True when `key` has been inserted.
  [[nodiscard]] bool contains(std::uint64_t key) const {
    const std::uint64_t biased = key + 1;
    std::size_t i = probe_start(key);
    while (slots_[i] != 0) {
      if (slots_[i] == biased) return true;
      i = (i + 1) & (slots_.size() - 1);
    }
    return false;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

 private:
  /// splitmix64 finalizer: full-avalanche mix so sequential packet keys
  /// spread over the table.
  [[nodiscard]] std::size_t probe_start(std::uint64_t key) const {
    std::uint64_t x = key;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x) & (slots_.size() - 1);
  }

  void grow() {
    std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, 0);
    size_ = 0;
    for (std::uint64_t biased : old) {
      if (biased != 0) insert(biased - 1);
    }
  }

  std::vector<std::uint64_t> slots_;
  std::size_t size_ = 0;
};

}  // namespace hi
