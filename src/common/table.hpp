// hi-opt: console table / CSV writers used by the benchmark harness to
// print paper tables and figure series in a uniform format.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace hi {

/// A simple left-padded text table.  Columns are sized to fit; numbers are
/// the caller's responsibility to format (use fmt_double below).
class TextTable {
 public:
  /// Sets the header row.
  void set_header(std::vector<std::string> header);

  /// Appends a data row; it may have fewer cells than the header.
  void add_row(std::vector<std::string> row);

  /// Number of data rows.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Renders the table with aligned columns and a rule under the header.
  void print(std::ostream& os) const;

  /// Renders the table as CSV (header first if set).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` digits after the decimal point.
[[nodiscard]] std::string fmt_double(double v, int digits = 2);

/// Formats a ratio as a percentage string, e.g. 0.873 -> "87.3%".
[[nodiscard]] std::string fmt_percent(double ratio, int digits = 1);

}  // namespace hi
