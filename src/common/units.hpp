// hi-opt: physical unit helpers used across the channel, radio, and power
// models.  Power quantities appear in two forms throughout the paper:
// logarithmic (dBm) for link budgets and linear (mW) for energy accounting.
#pragma once

#include <cmath>

namespace hi {

/// Converts a power level from dBm to milliwatts.
[[nodiscard]] inline double dbm_to_mw(double dbm) {
  return std::pow(10.0, dbm / 10.0);
}

/// Converts a power level from milliwatts to dBm.
[[nodiscard]] inline double mw_to_dbm(double mw) {
  return 10.0 * std::log10(mw);
}

/// Seconds in a day; network lifetime is reported in days (Fig. 3).
inline constexpr double kSecondsPerDay = 86'400.0;

/// Converts seconds to days.
[[nodiscard]] inline constexpr double seconds_to_days(double s) {
  return s / kSecondsPerDay;
}

/// Converts days to seconds.
[[nodiscard]] inline constexpr double days_to_seconds(double d) {
  return d * kSecondsPerDay;
}

/// Converts milliwatts to watts.
[[nodiscard]] inline constexpr double mw_to_w(double mw) { return mw * 1e-3; }

/// Converts microwatts to milliwatts.
[[nodiscard]] inline constexpr double uw_to_mw(double uw) { return uw * 1e-3; }

/// Energy of a battery given capacity in mAh and voltage in volts, in
/// joules.  A CR2032 coin cell is ~225 mAh at 3 V nominal => ~2430 J.
[[nodiscard]] inline constexpr double battery_energy_j(double mah,
                                                       double volts) {
  return mah * 1e-3 * volts * 3600.0;
}

/// Packet transmission duration in seconds for a payload of `bytes` at a
/// bit rate of `bit_rate_bps` (paper: Tpkt = 8L / BR).
[[nodiscard]] inline constexpr double packet_duration_s(double bytes,
                                                        double bit_rate_bps) {
  return 8.0 * bytes / bit_rate_bps;
}

/// True when |a - b| <= atol + rtol*max(|a|,|b|).
[[nodiscard]] inline bool approx_equal(double a, double b, double rtol = 1e-9,
                                       double atol = 1e-12) {
  return std::fabs(a - b) <=
         atol + rtol * std::fmax(std::fabs(a), std::fabs(b));
}

}  // namespace hi
