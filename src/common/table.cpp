#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace hi {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& os) const {
  // Column widths.
  std::size_t cols = header_.size();
  for (const auto& r : rows_) {
    cols = std::max(cols, r.size());
  }
  std::vector<std::size_t> width(cols, 0);
  auto grow = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      width[i] = std::max(width[i], r[i].size());
    }
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < cols; ++i) {
      const std::string& cell = i < r.size() ? r[i] : std::string{};
      os << std::left << std::setw(static_cast<int>(width[i])) << cell;
      if (i + 1 < cols) {
        os << "  ";
      }
    }
    os << '\n';
  };

  if (!header_.empty()) {
    emit(header_);
    std::size_t rule = 0;
    for (std::size_t i = 0; i < cols; ++i) {
      rule += width[i] + (i + 1 < cols ? 2 : 0);
    }
    os << std::string(rule, '-') << '\n';
  }
  for (const auto& r : rows_) {
    emit(r);
  }
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (i) os << ',';
      // Quote cells containing commas.
      if (r[i].find(',') != std::string::npos) {
        os << '"' << r[i] << '"';
      } else {
        os << r[i];
      }
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
}

std::string fmt_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string fmt_percent(double ratio, int digits) {
  return fmt_double(ratio * 100.0, digits) + "%";
}

}  // namespace hi
