// hi-opt: observability — RAII phase timing.
//
// ScopedTimer observes its own lifetime (wall-clock seconds) into a
// named Histogram of a MetricsRegistry: construct at phase entry,
// destroy at phase exit.  A null registry makes the timer a no-op (the
// clock is not even read), so instrumented code needs no branches.
// Used by the MILP solver (`milp.solve_s`), the evaluator
// (`dse.simulate_s`), the batch engine (`exec.batch_s`), and the
// explorers' per-phase hooks (`alg1.milp_s`, `alg1.sim_s`, ...).
#pragma once

#include <chrono>
#include <string_view>

#include "obs/metrics.hpp"

namespace hi::obs {

/// See file comment.
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry* registry, std::string_view name)
      : hist_(registry != nullptr ? &registry->histogram(name) : nullptr) {
    if (hist_ != nullptr) {
      t0_ = std::chrono::steady_clock::now();
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (hist_ != nullptr) {
      hist_->observe(elapsed_s());
    }
  }

  /// Seconds since construction (0 when unobserved).
  [[nodiscard]] double elapsed_s() const {
    if (hist_ == nullptr) {
      return 0.0;
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0_)
        .count();
  }

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point t0_{};
};

}  // namespace hi::obs
