#include "obs/trace.hpp"

#include <limits>
#include <ostream>

namespace hi::obs {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kTx: return "tx";
    case TraceKind::kRxOk: return "rx_ok";
    case TraceKind::kRxCollision: return "rx_collision";
    case TraceKind::kDropBuffer: return "drop_buffer";
    case TraceKind::kBackoff: return "backoff";
    case TraceKind::kRadioDwell: return "radio_dwell";
    case TraceKind::kNodeEnergy: return "node_energy";
    case TraceKind::kKernel: return "kernel";
  }
  return "?";
}

void JsonlTraceSink::on_event(const TraceEvent& e) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto old = os_.precision(std::numeric_limits<double>::max_digits10);
  os_ << "{\"t\": " << e.t_s << ", \"kind\": \"" << to_string(e.kind)
      << "\", \"node\": " << e.node << ", \"peer\": " << e.peer
      << ", \"a\": " << e.a << ", \"x\": " << e.x << ", \"y\": " << e.y
      << "}\n";
  os_.precision(old);
}

void CsvTraceSink::on_event(const TraceEvent& e) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!header_written_) {
    os_ << "t,kind,node,peer,a,x,y\n";
    header_written_ = true;
  }
  const auto old = os_.precision(std::numeric_limits<double>::max_digits10);
  os_ << e.t_s << ',' << to_string(e.kind) << ',' << e.node << ',' << e.peer
      << ',' << e.a << ',' << e.x << ',' << e.y << '\n';
  os_.precision(old);
}

}  // namespace hi::obs
