// hi-opt: observability — structured run tracing.
//
// A RunTrace streams simulation-time-stamped records out of one DES run:
// packet transmissions/receptions/drops, MAC backoffs, per-node radio
// dwell and energy, and a kernel summary.  Events are a fixed flat
// record (no allocation on the hot path); the kind decides how the
// generic fields are read:
//
//   kind          node        peer           a            x           y
//   ------------- ----------- -------------- ------------ ----------- -----------
//   tx            sender loc  packet origin  app seq      bytes       airtime s
//   rx_ok         receiver    packet origin  app seq      rx hops     -
//   rx_collision  receiver    packet origin  app seq      -           -
//   drop_buffer   dropper     packet origin  app seq      -           -
//   backoff       node        -              backoff #    wait s      -
//   radio_dwell   node        -              tx packets   tx time s   rx time s
//   node_energy   node        -              app sent     tx mJ       rx mJ
//   kernel        -           -              events run   cancelled   heap hwm
//
// Sinks are pluggable (JSON-lines, CSV, in-memory for tests) and
// internally synchronized, so a shared sink survives hi::exec workers
// tracing concurrently — though traced runs are typically serial.  With
// no sink attached (the default everywhere), recording is a single
// branch on a null pointer: the zero-cost contract bench_des_perf
// guards.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <vector>

namespace hi::obs {

/// What a TraceEvent describes; see the field table above.
enum class TraceKind : std::uint8_t {
  kTx,
  kRxOk,
  kRxCollision,
  kDropBuffer,
  kBackoff,
  kRadioDwell,
  kNodeEnergy,
  kKernel,
};

[[nodiscard]] const char* to_string(TraceKind kind);

/// One flat trace record; field meaning depends on `kind` (table above).
struct TraceEvent {
  double t_s = 0.0;       ///< simulation time of the event
  TraceKind kind = TraceKind::kTx;
  int node = -1;          ///< location id, -1 when not node-scoped
  int peer = -1;          ///< counterpart location id, -1 when none
  std::int64_t a = 0;     ///< kind-specific integer
  double x = 0.0;         ///< kind-specific
  double y = 0.0;         ///< kind-specific
};

/// Receives every recorded event.  Implementations must tolerate
/// concurrent on_event() calls (take a lock or be lock-free).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& e) = 0;
};

/// JSON-lines sink: one {"t":..,"kind":"tx",...} object per line.
class JsonlTraceSink final : public TraceSink {
 public:
  /// The stream must outlive the sink; the sink serializes writers.
  explicit JsonlTraceSink(std::ostream& os) : os_(os) {}
  void on_event(const TraceEvent& e) override;

 private:
  std::mutex mu_;
  std::ostream& os_;
};

/// CSV sink: header `t,kind,node,peer,a,x,y`, then one row per event.
class CsvTraceSink final : public TraceSink {
 public:
  explicit CsvTraceSink(std::ostream& os) : os_(os) {}
  void on_event(const TraceEvent& e) override;

 private:
  std::mutex mu_;
  std::ostream& os_;
  bool header_written_ = false;
};

/// In-memory sink for tests.
class MemoryTraceSink final : public TraceSink {
 public:
  void on_event(const TraceEvent& e) override {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(e);
  }
  /// Copy of everything recorded so far.
  [[nodiscard]] std::vector<TraceEvent> events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// The handle instrumented code holds.  Layers keep a `const RunTrace*`
/// that is null by default; `record()` on a RunTrace with no sink is a
/// no-op, so both the pointer and the sink can be absent for free.
class RunTrace {
 public:
  RunTrace() = default;
  explicit RunTrace(TraceSink* sink) : sink_(sink) {}

  [[nodiscard]] bool enabled() const { return sink_ != nullptr; }
  void record(const TraceEvent& e) const {
    if (sink_ != nullptr) {
      sink_->on_event(e);
    }
  }

 private:
  TraceSink* sink_ = nullptr;
};

}  // namespace hi::obs
