#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace hi::obs {

int Histogram::bucket_of(double v) {
  if (!(v > 0.0)) {
    return 0;
  }
  int e = 0;
  (void)std::frexp(v, &e);  // v = m * 2^e, m in [0.5, 1)
  return std::clamp(e + 20, 0, kHistogramBuckets - 1);
}

void Histogram::observe(double v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
  if (!any_.exchange(true, std::memory_order_relaxed)) {
    // First observation seeds both extremes; a concurrent second
    // observation still converges via the CAS loops below.
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  }
  double lo = min_.load(std::memory_order_relaxed);
  while (v < lo &&
         !min_.compare_exchange_weak(lo, v, std::memory_order_relaxed)) {
  }
  double hi = max_.load(std::memory_order_relaxed);
  while (v > hi &&
         !max_.compare_exchange_weak(hi, v, std::memory_order_relaxed)) {
  }
  buckets_[static_cast<std::size_t>(bucket_of(v))].fetch_add(
      1, std::memory_order_relaxed);
}

HistogramSummary Histogram::summary() const {
  HistogramSummary s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  for (int i = 0; i < kHistogramBuckets; ++i) {
    s.buckets[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  return s;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    return it->second;
  }
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    return it->second;
  }
  return gauges_.try_emplace(std::string(name)).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    return it->second;
  }
  return histograms_.try_emplace(std::string(name)).first->second;
}

Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  for (const auto& [name, c] : counters_) {
    s.counters.emplace(name, c.value());
  }
  for (const auto& [name, g] : gauges_) {
    s.gauges.emplace(name, g.value());
  }
  for (const auto& [name, h] : histograms_) {
    s.histograms.emplace(name, h.summary());
  }
  return s;
}

}  // namespace hi::obs
