// hi-opt: observability — the metrics registry.
//
// One MetricsRegistry is the instrumentation plane for a whole
// experiment: every subsystem (DES kernel, net stack, MILP solver,
// evaluator, hi::exec batch engine, explorers) records into named
// instruments and a Snapshot collects them at any point.  Three
// instrument kinds:
//
//   Counter   — monotone uint64 (events, packets, simulations);
//   Gauge     — last-written double with an update_max() high-water
//               variant (heap depth, queue length);
//   Histogram — streaming count/sum/min/max plus power-of-two buckets
//               (latencies, batch sizes); approximate quantiles only.
//
// Contract (see DESIGN.md §8):
//   * Instruments are created on first use and live as long as the
//     registry; returned references stay valid forever (node-based map).
//   * All record paths are lock-free atomics — hi::exec workers may
//     record concurrently; creation/lookup takes a mutex, so callers on
//     hot paths should look an instrument up once and keep the pointer.
//   * A null registry pointer is the universal "not observed" state:
//     every instrumented subsystem accepts nullptr and then skips
//     recording entirely (a single branch on the hot path).
//   * Counters are exact under concurrency (atomic adds commute), which
//     is what lets the paper's headline simulation counts be asserted
//     bit-for-bit at any thread count.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/snapshot.hpp"

namespace hi::obs {

/// Monotone event counter.  All members are safe to call concurrently.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-value / high-water instrument.  Safe to call concurrently.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  /// Raises the gauge to `v` if it is below (high-water semantics).
  void update_max(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Streaming histogram: count/sum/min/max plus kHistogramBuckets
/// power-of-two buckets (bucket i covers [2^(i-20), 2^(i-19)) — from
/// ~1 µs to ~2000 s when observing seconds).  Safe to call concurrently;
/// the aggregate fields are each atomic, so a concurrent snapshot may be
/// torn *across* fields (count vs sum) but never within one.
class Histogram {
 public:
  void observe(double v);
  [[nodiscard]] HistogramSummary summary() const;

  /// Bucket index for a value; exposed for tests.
  [[nodiscard]] static int bucket_of(double v);

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> any_{false};
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
};

/// See file comment.
class MetricsRegistry {
 public:
  /// Finds or creates the named instrument.  References stay valid for
  /// the registry's lifetime (std::map nodes never move).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Consistent-enough point-in-time copy of every instrument.  Counters
  /// are exact once all recording threads have quiesced.
  [[nodiscard]] Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;  ///< guards map structure only, not the atomics
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace hi::obs
