// hi-opt: observability — point-in-time metric snapshots.
//
// A Snapshot is a plain value: the names and values of every instrument
// of a MetricsRegistry at one moment.  Explorers attach a *delta*
// snapshot (end minus start) to each ExplorationResult so one shared
// registry can serve many runs; benches serialize snapshots as JSON so
// the perf trajectory gains counter baselines.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

namespace hi::obs {

inline constexpr int kHistogramBuckets = 32;

/// Aggregate view of one Histogram.
struct HistogramSummary {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  [[nodiscard]] double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
  /// Approximate quantile (q in [0,1]) from the power-of-two buckets:
  /// accurate to within one bucket width (a factor of 2).
  [[nodiscard]] double approx_quantile(double q) const;
};

/// See file comment.
struct Snapshot {
  std::map<std::string, std::uint64_t, std::less<>> counters;
  std::map<std::string, double, std::less<>> gauges;
  std::map<std::string, HistogramSummary, std::less<>> histograms;

  /// Value of a counter, 0 when absent (never-recorded == zero).
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  /// Value of a gauge, 0.0 when absent.
  [[nodiscard]] double gauge(std::string_view name) const;
  /// Histogram summary, or nullptr when absent.
  [[nodiscard]] const HistogramSummary* histogram(std::string_view name) const;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// The change since `base` (taken from the same registry earlier):
  /// counters and histogram counts/sums/buckets subtract; gauges and
  /// histogram min/max keep this snapshot's value (extremes and levels
  /// are not differentiable).  Instruments absent from `base` pass
  /// through whole.
  [[nodiscard]] Snapshot delta_since(const Snapshot& base) const;

  /// Serializes as one JSON object:
  ///   {"counters": {...}, "gauges": {...},
  ///    "histograms": {"name": {"count":..,"sum":..,"min":..,"max":..,
  ///                            "mean":..}, ...}}
  /// Doubles round-trip (max_digits10).  No trailing newline.
  void write_json(std::ostream& os) const;
};

}  // namespace hi::obs
