#include "obs/snapshot.hpp"

#include <cmath>
#include <limits>
#include <ostream>

namespace hi::obs {

namespace {

/// Escapes the characters JSON cannot carry raw.  Metric names are
/// dotted ASCII identifiers in practice, but sinks must not emit broken
/// documents for unusual ones.
void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

void write_json_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";  // JSON has no inf/nan
    return;
  }
  const auto old = os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  os.precision(old);
}

}  // namespace

double HistogramSummary::approx_quantile(double q) const {
  if (count == 0) {
    return 0.0;
  }
  q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count - 1));
  std::uint64_t seen = 0;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    seen += buckets[static_cast<std::size_t>(i)];
    if (seen > rank) {
      // Upper edge of bucket i: 2^(i-19); clamp to observed extremes.
      const double edge = std::ldexp(1.0, i - 19);
      return edge < min ? min : (edge > max ? max : edge);
    }
  }
  return max;
}

std::uint64_t Snapshot::counter(std::string_view name) const {
  const auto it = counters.find(name);
  return it != counters.end() ? it->second : 0;
}

double Snapshot::gauge(std::string_view name) const {
  const auto it = gauges.find(name);
  return it != gauges.end() ? it->second : 0.0;
}

const HistogramSummary* Snapshot::histogram(std::string_view name) const {
  const auto it = histograms.find(name);
  return it != histograms.end() ? &it->second : nullptr;
}

Snapshot Snapshot::delta_since(const Snapshot& base) const {
  Snapshot d = *this;
  for (auto& [name, v] : d.counters) {
    const auto it = base.counters.find(name);
    if (it != base.counters.end()) {
      v -= it->second <= v ? it->second : v;  // clamp at 0 defensively
    }
  }
  for (auto& [name, h] : d.histograms) {
    const auto it = base.histograms.find(name);
    if (it == base.histograms.end()) {
      continue;
    }
    const HistogramSummary& b = it->second;
    h.count -= b.count <= h.count ? b.count : h.count;
    h.sum -= b.sum;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      h.buckets[i] -= b.buckets[i] <= h.buckets[i] ? b.buckets[i]
                                                   : h.buckets[i];
    }
  }
  // Gauges (levels / high-water marks) keep their current value.
  return d;
}

void Snapshot::write_json(std::ostream& os) const {
  os << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    os << (first ? "" : ", ");
    write_json_string(os, name);
    os << ": " << v;
    first = false;
  }
  os << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    os << (first ? "" : ", ");
    write_json_string(os, name);
    os << ": ";
    write_json_double(os, v);
    first = false;
  }
  os << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    os << (first ? "" : ", ");
    write_json_string(os, name);
    os << ": {\"count\": " << h.count << ", \"sum\": ";
    write_json_double(os, h.sum);
    os << ", \"min\": ";
    write_json_double(os, h.min);
    os << ", \"max\": ";
    write_json_double(os, h.max);
    os << ", \"mean\": ";
    write_json_double(os, h.mean());
    os << "}";
    first = false;
  }
  os << "}}";
}

}  // namespace hi::obs
