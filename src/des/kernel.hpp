// hi-opt: discrete-event simulation kernel.
//
// A minimal, deterministic event scheduler in the style of OMNeT++ /
// Castalia's core: events are (time, handler) pairs executed in
// non-decreasing time order, with FIFO ordering among simultaneous
// events (by scheduling sequence number) so runs are exactly
// reproducible.
//
// Hot-path design (DESIGN.md §11).  The kernel is the innermost loop of
// every DSE iteration, so its storage is built to avoid per-event heap
// traffic entirely:
//
//   * Event arena — events live in fixed-size slabs (chunks of Event
//     slots with stable addresses); a free list recycles slots, so
//     steady-state schedule/dispatch allocates nothing.  Handlers are
//     stored inline in the slot via a small-buffer vtable (invoke /
//     destroy function pointers); callables larger than
//     kInlineHandlerBytes fall back to one heap allocation each,
//     counted in handler_heap_allocs() (obs: des.alloc_handler_heap)
//     so the fallback can never creep in silently.
//   * Indexed d-ary min-heap — the pending queue is a 4-ary heap of
//     slot indices ordered by (time, seq); each slot records its heap
//     position, so cancel() removes the event in place in O(log n).
//     There is no tombstone side-table and no lazy-cancellation
//     residue: every entry in the heap is live.
//   * Same-time chains — a radio transmission fans out to every other
//     radio with one signal-end per receiver, all at the identical
//     timestamp, so at crowd fan-outs (DESIGN.md §15) the heap would
//     spend most of the run sifting entries that are mutually tied.
//     Instead, consecutively scheduled events with equal times are
//     chained FIFO onto the first one: only the chain head occupies a
//     heap entry, appends are O(1), and when the head is dispatched its
//     successor takes the head's heap position without any sifting —
//     chain members were scheduled back-to-back, so their seq range is
//     contiguous-in-schedule-order and no other pending event can order
//     between two of them.
//   * Epoch-tagged EventIds — a slot's epoch is bumped every time the
//     slot is released, and an EventId carries the epoch it was issued
//     under, so a stale id (event already ran, already cancelled, or
//     slot since recycled) can never cancel an unrelated event.
//
// Determinism contract: execution order is the total order (time, seq)
// over live events — identical to the historical priority-queue +
// lazy-cancellation kernel for any schedule/cancel sequence — so
// simulation results are bit-identical to that design
// (tests/test_sim_golden.cpp pins recorded pre-overhaul fingerprints).
// The one observable change: heap_highwater() now reports the live
// pending high water; the old kernel's figure included
// cancelled-but-unpopped residue, which no longer exists.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace hi::des {

/// Simulation time in seconds.
using Time = double;

/// Handle for a scheduled event, usable with Kernel::cancel().  Carries
/// the arena slot and the epoch it was issued under; default-constructed
/// ids are invalid and cancel() on them is a no-op.
struct EventId {
  std::uint32_t slot = 0;
  std::uint32_t epoch = 0;  // 0 = never issued
  [[nodiscard]] bool valid() const { return epoch != 0; }
};

/// The event scheduler.  Not thread-safe; one kernel per simulation run.
class Kernel {
 public:
  /// Handlers up to this size (and max_align_t alignment) are stored
  /// inline in the event slot; larger ones cost one heap allocation.
  /// 48 bytes comfortably fits every capture in the simulator's stack
  /// (the largest, a std::function self-rescheduling closure, is 32).
  static constexpr std::size_t kInlineHandlerBytes = 48;

  Kernel() = default;
  ~Kernel();
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Current simulation time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `h` at absolute time `t >= now()`.  Returns a cancellable
  /// id.  `h` is any void() callable; it may schedule further events
  /// (including at the current time) and may cancel any pending event —
  /// cancelling its *own* id is a no-op, matching the historical
  /// erase-before-invoke semantics.
  template <typename F>
  EventId schedule_at(Time t, F&& h) {
    using Fn = std::decay_t<F>;
    HI_ASSERT_MSG(t >= now_, "schedule_at(" << t << ") before now=" << now_);
    Event& e = acquire_slot();
    e.t = t;
    e.seq = next_seq_++;
    if constexpr (sizeof(Fn) <= kInlineHandlerBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(e.storage)) Fn(std::forward<F>(h));
      e.invoke = [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); };
      e.destroy = [](void* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); };
    } else {
      ::new (static_cast<void*>(e.storage)) Fn*(new Fn(std::forward<F>(h)));
      ++handler_heap_allocs_;
      e.invoke = [](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); };
      e.destroy = [](void* s) {
        delete *std::launder(reinterpret_cast<Fn**>(s));
      };
    }
    enqueue(e);
    return EventId{e.self, e.epoch};
  }

  /// Schedules `h` after `delay >= 0` seconds.
  template <typename F>
  EventId schedule_in(Time delay, F&& h) {
    HI_ASSERT_MSG(delay >= 0.0, "negative delay " << delay);
    return schedule_at(now_ + delay, std::forward<F>(h));
  }

  /// Cancels a pending event in place (O(log n)); no-op if it already
  /// ran, was already cancelled, or the id is invalid/stale.
  void cancel(EventId id);

  /// Pre-sizes the arena and heap for at least `min_pending` concurrently
  /// pending events, so a run whose high water stays under the
  /// reservation never grows a container mid-run.  This is how a
  /// multi-network (crowd) run shares one kernel across M bodies without
  /// per-body allocation: one reservation up front, zero slab growth on
  /// the hot path.  Purely an allocation hint — slot hand-out order,
  /// event ordering, and every counter except arena_chunks() are
  /// unaffected, so reserved and unreserved runs are bit-identical.
  void reserve(std::size_t min_pending);

  /// Runs events with time <= horizon, then sets now() = horizon.
  /// Handlers may schedule further events, including at the current time.
  void run_until(Time horizon);

  /// Runs until the event queue is empty.
  void run_to_completion();

  /// Number of events executed so far (cancelled events excluded).
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// Number of events currently pending (cancelled ones are removed
  /// immediately and never counted).
  [[nodiscard]] std::size_t events_pending() const { return pending_; }

  /// Number of events cancelled before they ran.
  [[nodiscard]] std::uint64_t events_cancelled() const { return cancelled_; }

  /// Largest number of simultaneously pending events ever reached.
  /// (Live events only — the in-place-cancelling heap keeps no
  /// tombstones, unlike the pre-overhaul kernel whose high water
  /// included cancelled residue.)
  [[nodiscard]] std::size_t heap_highwater() const { return heap_hwm_; }

  // --- Allocation / heap-work introspection (obs: des.alloc_*,
  // --- des.heap_sift; see DESIGN.md §11) -------------------------------
  /// Event-arena slabs allocated so far (kChunkEvents slots each).
  [[nodiscard]] std::uint64_t arena_chunks() const { return arena_chunks_; }
  /// Handlers too large for the inline buffer (each cost one heap
  /// allocation).  Zero for the whole hi::net stack.
  [[nodiscard]] std::uint64_t handler_heap_allocs() const {
    return handler_heap_allocs_;
  }
  /// Total sift-up + sift-down steps performed by the indexed heap —
  /// the comparison work a run's schedule pattern induces.  Same-time
  /// chain appends and promotions cost no sift steps, so this counts
  /// only genuine reordering work.
  [[nodiscard]] std::uint64_t heap_sift_steps() const { return sift_steps_; }

 private:
  static constexpr std::size_t kChunkEvents = 256;
  static constexpr std::int32_t kFree = -1;     ///< slot on the free list
  static constexpr std::int32_t kRunning = -2;  ///< popped, handler active
  static constexpr std::int32_t kChained = -3;  ///< pending inside a chain
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;  ///< null chain link

  struct Event {
    Time t = 0.0;
    std::uint64_t seq = 0;
    std::uint32_t self = 0;   ///< arena index of this slot
    std::uint32_t epoch = 1;  ///< bumped on every release
    std::int32_t heap_pos = kFree;
    /// Same-time chain links (kNoSlot = none).  The chain head carries
    /// heap_pos >= 0 and prev_same == kNoSlot; members carry kChained.
    std::uint32_t next_same = kNoSlot;
    std::uint32_t prev_same = kNoSlot;
    void (*invoke)(void*) = nullptr;
    void (*destroy)(void*) = nullptr;
    alignas(std::max_align_t) unsigned char storage[kInlineHandlerBytes];
  };

  [[nodiscard]] Event& event(std::uint32_t slot) {
    return chunks_[slot / kChunkEvents][slot % kChunkEvents];
  }

  /// Earlier-time-wins, FIFO (lower seq) among equal times: the same
  /// total order the historical (time, seq) priority queue used.
  [[nodiscard]] static bool before(const Event& a, const Event& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }

  Event& acquire_slot();
  void grow_arena();  ///< adds one slab and puts its slots on the free list
  void release_slot(Event& e);  ///< destroy handler, bump epoch, recycle
  void enqueue(Event& e);       ///< chain onto the previous event or heap_push
  void heap_push(std::uint32_t slot);
  void heap_remove(std::int32_t pos);  ///< detach heap_[pos] from the heap
  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  void dispatch(Event& e);  ///< run + release one popped event

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::size_t pending_ = 0;
  std::size_t heap_hwm_ = 0;
  std::uint64_t arena_chunks_ = 0;
  std::uint64_t handler_heap_allocs_ = 0;
  std::uint64_t sift_steps_ = 0;
  /// Most recently scheduled event, the only legal chain-append point
  /// (epoch-checked, so a dispatched/cancelled/recycled slot never
  /// accretes a chain).
  std::uint32_t last_slot_ = kNoSlot;
  std::uint32_t last_epoch_ = 0;
  std::vector<std::uint32_t> heap_;  ///< 4-ary min-heap of chain heads
  std::vector<std::unique_ptr<Event[]>> chunks_;
  std::vector<std::uint32_t> free_;
};

}  // namespace hi::des
