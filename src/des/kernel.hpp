// hi-opt: discrete-event simulation kernel.
//
// A minimal, deterministic event scheduler in the style of OMNeT++ /
// Castalia's core: events are (time, handler) pairs executed in
// non-decreasing time order, with FIFO ordering among simultaneous
// events (by scheduling sequence number) so runs are exactly
// reproducible.  Cancellation is O(1) lazy: cancelled events stay in the
// heap and are skipped on pop.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

namespace hi::des {

/// Simulation time in seconds.
using Time = double;

/// Handle for a scheduled event, usable with Kernel::cancel().
struct EventId {
  std::uint64_t seq = 0;
  [[nodiscard]] bool valid() const { return seq != 0; }
};

/// The event scheduler.  Not thread-safe; one kernel per simulation run.
class Kernel {
 public:
  using Handler = std::function<void()>;

  /// Current simulation time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `h` at absolute time `t >= now()`.  Returns a cancellable id.
  EventId schedule_at(Time t, Handler h);

  /// Schedules `h` after `delay >= 0` seconds.
  EventId schedule_in(Time delay, Handler h);

  /// Cancels a pending event; no-op if it already ran or was cancelled.
  void cancel(EventId id);

  /// Runs events with time <= horizon, then sets now() = horizon.
  /// Handlers may schedule further events, including at the current time.
  void run_until(Time horizon);

  /// Runs until the event queue is empty.
  void run_to_completion();

  /// Number of events executed so far (cancelled events excluded).
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// Number of events currently pending (cancelled ones excluded).
  [[nodiscard]] std::size_t events_pending() const { return handlers_.size(); }

  /// Number of events cancelled before they ran.
  [[nodiscard]] std::uint64_t events_cancelled() const { return cancelled_; }

  /// Largest heap size ever reached (cancelled-but-unpopped included —
  /// the lazy-cancellation residue is exactly what this is for).
  [[nodiscard]] std::size_t heap_highwater() const { return heap_hwm_; }

 private:
  struct QEntry {
    Time t;
    std::uint64_t seq;
    // Min-heap: earliest time first, then lowest sequence number.
    bool operator>(const QEntry& o) const {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };

  void step(const QEntry& e);

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 1;  // 0 is the invalid EventId
  std::uint64_t processed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::size_t heap_hwm_ = 0;
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> queue_;
  std::unordered_map<std::uint64_t, Handler> handlers_;
};

}  // namespace hi::des
