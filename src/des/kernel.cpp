#include "des/kernel.hpp"

namespace hi::des {
namespace {

/// Children of heap position p live at p*kArity+1 ..; parent at (p-1)/kArity.
constexpr std::size_t kArity = 4;

}  // namespace

Kernel::~Kernel() {
  // Destroy handlers of events still pending at teardown (run_until
  // leaves future events queued by design), including chained members
  // that never occupy a heap entry themselves.
  for (const std::uint32_t head : heap_) {
    std::uint32_t s = head;
    while (s != kNoSlot) {
      Event& e = event(s);
      const std::uint32_t next = e.next_same;
      e.destroy(e.storage);
      s = next;
    }
  }
}

void Kernel::grow_arena() {
  auto chunk = std::make_unique<Event[]>(kChunkEvents);
  const auto base = static_cast<std::uint32_t>(chunks_.size() * kChunkEvents);
  for (std::size_t i = 0; i < kChunkEvents; ++i) {
    chunk[i].self = base + static_cast<std::uint32_t>(i);
  }
  chunks_.push_back(std::move(chunk));
  ++arena_chunks_;
  // Push in reverse so low indices are handed out first.
  free_.reserve(free_.size() + kChunkEvents);
  for (std::size_t i = kChunkEvents; i-- > 0;) {
    free_.push_back(base + static_cast<std::uint32_t>(i));
  }
}

Kernel::Event& Kernel::acquire_slot() {
  if (free_.empty()) {
    grow_arena();
  }
  Event& e = event(free_.back());
  free_.pop_back();
  return e;
}

void Kernel::reserve(std::size_t min_pending) {
  heap_.reserve(min_pending);
  const std::size_t want =
      (min_pending + kChunkEvents - 1) / kChunkEvents;
  while (chunks_.size() < want) {
    grow_arena();
  }
}

void Kernel::release_slot(Event& e) {
  e.destroy(e.storage);
  e.invoke = nullptr;
  e.destroy = nullptr;
  e.heap_pos = kFree;
  ++e.epoch;
  if (e.epoch == 0) ++e.epoch;  // epoch 0 is reserved for "never issued"
  free_.push_back(e.self);
}

void Kernel::enqueue(Event& e) {
  ++pending_;
  if (pending_ > heap_hwm_) heap_hwm_ = pending_;
  e.next_same = kNoSlot;
  e.prev_same = kNoSlot;
  if (last_slot_ != kNoSlot) {
    Event& prev = event(last_slot_);
    // `prev` is a chain tail by construction: appends only ever target
    // the most recently scheduled event, so nothing follows it.  The
    // epoch / kRunning checks reject a slot that was dispatched,
    // cancelled, or recycled since it was scheduled.
    if (prev.epoch == last_epoch_ && prev.heap_pos != kRunning &&
        prev.t == e.t) {
      prev.next_same = e.self;
      e.prev_same = prev.self;
      e.heap_pos = kChained;
      last_slot_ = e.self;
      last_epoch_ = e.epoch;
      return;
    }
  }
  heap_push(e.self);
  last_slot_ = e.self;
  last_epoch_ = e.epoch;
}

void Kernel::heap_push(std::uint32_t slot) {
  event(slot).heap_pos = static_cast<std::int32_t>(heap_.size());
  heap_.push_back(slot);
  sift_up(heap_.size() - 1);
}

void Kernel::heap_remove(std::int32_t pos) {
  const auto p = static_cast<std::size_t>(pos);
  const std::uint32_t last = heap_.back();
  heap_.pop_back();
  if (p == heap_.size()) return;  // removed the tail entry
  heap_[p] = last;
  event(last).heap_pos = pos;
  // The filler may need to move either way relative to its new neighbours.
  sift_up(p);
  sift_down(static_cast<std::size_t>(event(last).heap_pos));
}

void Kernel::sift_up(std::size_t pos) {
  const std::uint32_t slot = heap_[pos];
  const Event& e = event(slot);
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / kArity;
    const std::uint32_t pslot = heap_[parent];
    if (!before(e, event(pslot))) break;
    heap_[pos] = pslot;
    event(pslot).heap_pos = static_cast<std::int32_t>(pos);
    pos = parent;
    ++sift_steps_;
  }
  heap_[pos] = slot;
  event(slot).heap_pos = static_cast<std::int32_t>(pos);
}

void Kernel::sift_down(std::size_t pos) {
  const std::size_t n = heap_.size();
  const std::uint32_t slot = heap_[pos];
  const Event& e = event(slot);
  for (;;) {
    const std::size_t first = pos * kArity + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = first + kArity < n ? first + kArity : n;
    for (std::size_t c = first + 1; c < end; ++c) {
      if (before(event(heap_[c]), event(heap_[best]))) best = c;
    }
    if (!before(event(heap_[best]), e)) break;
    heap_[pos] = heap_[best];
    event(heap_[pos]).heap_pos = static_cast<std::int32_t>(pos);
    pos = best;
    ++sift_steps_;
  }
  heap_[pos] = slot;
  event(slot).heap_pos = static_cast<std::int32_t>(pos);
}

void Kernel::cancel(EventId id) {
  if (!id.valid()) return;
  if (id.slot >= chunks_.size() * kChunkEvents) return;
  Event& e = event(id.slot);
  if (e.epoch != id.epoch) return;  // already ran / cancelled / recycled
  if (e.heap_pos == kRunning || e.heap_pos == kFree) {
    return;  // an event may not cancel itself
  }
  if (e.heap_pos == kChained) {
    // Unlink from the middle/tail of a chain; the head keeps its heap
    // entry and the (time, seq) order of the survivors is unchanged.
    Event& prev = event(e.prev_same);
    prev.next_same = e.next_same;
    if (e.next_same != kNoSlot) {
      event(e.next_same).prev_same = e.prev_same;
    }
  } else if (e.next_same != kNoSlot) {
    // Chain head: its successor inherits the heap entry.  The key grows
    // (same time, larger seq), so it can only need to move down.
    Event& n = event(e.next_same);
    n.prev_same = kNoSlot;
    const std::int32_t pos = e.heap_pos;
    heap_[static_cast<std::size_t>(pos)] = n.self;
    n.heap_pos = pos;
    sift_down(static_cast<std::size_t>(pos));
  } else {
    heap_remove(e.heap_pos);
  }
  --pending_;
  release_slot(e);
  ++cancelled_;
}

void Kernel::dispatch(Event& e) {
  // Detach before invoking so the handler sees its own id as
  // no-longer-pending (self-cancel is a no-op), exactly like the
  // historical erase-before-invoke semantics.
  if (e.next_same != kNoSlot) {
    // Promote the chain successor into the head's heap entry with no
    // sifting: chain members were scheduled back-to-back at one time,
    // so their seq range is contiguous in schedule order and no other
    // pending event orders between the head and its successor — the
    // successor is the new global minimum.
    Event& n = event(e.next_same);
    n.prev_same = kNoSlot;
    const std::int32_t pos = e.heap_pos;
    heap_[static_cast<std::size_t>(pos)] = n.self;
    n.heap_pos = pos;
  } else {
    heap_remove(e.heap_pos);
  }
  e.heap_pos = kRunning;
  --pending_;
  now_ = e.t;
  ++processed_;
  struct Release {  // release even if the handler throws
    Kernel* k;
    Event* e;
    ~Release() { k->release_slot(*e); }
  } release{this, &e};
  e.invoke(e.storage);
}

void Kernel::run_until(Time horizon) {
  HI_ASSERT_MSG(horizon >= now_, "horizon " << horizon << " < now " << now_);
  while (!heap_.empty()) {
    Event& e = event(heap_.front());
    if (e.t > horizon) break;
    dispatch(e);
  }
  now_ = horizon;
}

void Kernel::run_to_completion() {
  while (!heap_.empty()) {
    dispatch(event(heap_.front()));
  }
}

}  // namespace hi::des
