#include "des/kernel.hpp"

namespace hi::des {
namespace {

/// Children of heap position p live at p*kArity+1 ..; parent at (p-1)/kArity.
constexpr std::size_t kArity = 4;

}  // namespace

Kernel::~Kernel() {
  // Destroy handlers of events still pending at teardown (run_until
  // leaves future events queued by design).
  for (std::uint32_t slot : heap_) {
    Event& e = event(slot);
    e.destroy(e.storage);
  }
}

Kernel::Event& Kernel::acquire_slot() {
  if (free_.empty()) {
    auto chunk = std::make_unique<Event[]>(kChunkEvents);
    const auto base = static_cast<std::uint32_t>(chunks_.size() * kChunkEvents);
    for (std::size_t i = 0; i < kChunkEvents; ++i) {
      chunk[i].self = base + static_cast<std::uint32_t>(i);
    }
    chunks_.push_back(std::move(chunk));
    ++arena_chunks_;
    // Push in reverse so low indices are handed out first.
    free_.reserve(free_.size() + kChunkEvents);
    for (std::size_t i = kChunkEvents; i-- > 0;) {
      free_.push_back(base + static_cast<std::uint32_t>(i));
    }
  }
  Event& e = event(free_.back());
  free_.pop_back();
  return e;
}

void Kernel::release_slot(Event& e) {
  e.destroy(e.storage);
  e.invoke = nullptr;
  e.destroy = nullptr;
  e.heap_pos = kFree;
  ++e.epoch;
  if (e.epoch == 0) ++e.epoch;  // epoch 0 is reserved for "never issued"
  free_.push_back(e.self);
}

void Kernel::heap_push(std::uint32_t slot) {
  event(slot).heap_pos = static_cast<std::int32_t>(heap_.size());
  heap_.push_back(slot);
  sift_up(heap_.size() - 1);
  if (heap_.size() > heap_hwm_) heap_hwm_ = heap_.size();
}

void Kernel::heap_remove(std::int32_t pos) {
  const auto p = static_cast<std::size_t>(pos);
  const std::uint32_t last = heap_.back();
  heap_.pop_back();
  if (p == heap_.size()) return;  // removed the tail entry
  heap_[p] = last;
  event(last).heap_pos = pos;
  // The filler may need to move either way relative to its new neighbours.
  sift_up(p);
  sift_down(static_cast<std::size_t>(event(last).heap_pos));
}

void Kernel::sift_up(std::size_t pos) {
  const std::uint32_t slot = heap_[pos];
  const Event& e = event(slot);
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / kArity;
    const std::uint32_t pslot = heap_[parent];
    if (!before(e, event(pslot))) break;
    heap_[pos] = pslot;
    event(pslot).heap_pos = static_cast<std::int32_t>(pos);
    pos = parent;
    ++sift_steps_;
  }
  heap_[pos] = slot;
  event(slot).heap_pos = static_cast<std::int32_t>(pos);
}

void Kernel::sift_down(std::size_t pos) {
  const std::size_t n = heap_.size();
  const std::uint32_t slot = heap_[pos];
  const Event& e = event(slot);
  for (;;) {
    const std::size_t first = pos * kArity + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = first + kArity < n ? first + kArity : n;
    for (std::size_t c = first + 1; c < end; ++c) {
      if (before(event(heap_[c]), event(heap_[best]))) best = c;
    }
    if (!before(event(heap_[best]), e)) break;
    heap_[pos] = heap_[best];
    event(heap_[pos]).heap_pos = static_cast<std::int32_t>(pos);
    pos = best;
    ++sift_steps_;
  }
  heap_[pos] = slot;
  event(slot).heap_pos = static_cast<std::int32_t>(pos);
}

void Kernel::cancel(EventId id) {
  if (!id.valid()) return;
  if (id.slot >= chunks_.size() * kChunkEvents) return;
  Event& e = event(id.slot);
  if (e.epoch != id.epoch) return;  // already ran / cancelled / recycled
  if (e.heap_pos < 0) return;       // kRunning: an event may not cancel itself
  heap_remove(e.heap_pos);
  release_slot(e);
  ++cancelled_;
}

void Kernel::dispatch(Event& e) {
  // Detach before invoking so the handler sees its own id as
  // no-longer-pending (self-cancel is a no-op), exactly like the
  // historical erase-before-invoke semantics.
  heap_remove(e.heap_pos);
  e.heap_pos = kRunning;
  now_ = e.t;
  ++processed_;
  struct Release {  // release even if the handler throws
    Kernel* k;
    Event* e;
    ~Release() { k->release_slot(*e); }
  } release{this, &e};
  e.invoke(e.storage);
}

void Kernel::run_until(Time horizon) {
  HI_ASSERT_MSG(horizon >= now_, "horizon " << horizon << " < now " << now_);
  while (!heap_.empty()) {
    Event& e = event(heap_.front());
    if (e.t > horizon) break;
    dispatch(e);
  }
  now_ = horizon;
}

void Kernel::run_to_completion() {
  while (!heap_.empty()) {
    dispatch(event(heap_.front()));
  }
}

}  // namespace hi::des
