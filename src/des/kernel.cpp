#include "des/kernel.hpp"

#include <utility>

#include "common/assert.hpp"

namespace hi::des {

EventId Kernel::schedule_at(Time t, Handler h) {
  HI_ASSERT_MSG(t >= now_, "schedule_at(" << t << ") before now=" << now_);
  HI_ASSERT(h != nullptr);
  const std::uint64_t seq = next_seq_++;
  queue_.push(QEntry{t, seq});
  handlers_.emplace(seq, std::move(h));
  if (queue_.size() > heap_hwm_) {
    heap_hwm_ = queue_.size();
  }
  return EventId{seq};
}

EventId Kernel::schedule_in(Time delay, Handler h) {
  HI_ASSERT_MSG(delay >= 0.0, "negative delay " << delay);
  return schedule_at(now_ + delay, std::move(h));
}

void Kernel::cancel(EventId id) {
  if (id.valid()) {
    cancelled_ += handlers_.erase(id.seq);
  }
}

void Kernel::step(const QEntry& e) {
  auto it = handlers_.find(e.seq);
  if (it == handlers_.end()) {
    return;  // cancelled
  }
  // Move the handler out before erasing so it may reschedule itself.
  Handler h = std::move(it->second);
  handlers_.erase(it);
  now_ = e.t;
  ++processed_;
  h();
}

void Kernel::run_until(Time horizon) {
  HI_ASSERT_MSG(horizon >= now_, "horizon " << horizon << " < now " << now_);
  while (!queue_.empty() && queue_.top().t <= horizon) {
    const QEntry e = queue_.top();
    queue_.pop();
    step(e);
  }
  now_ = horizon;
}

void Kernel::run_to_completion() {
  while (!queue_.empty()) {
    const QEntry e = queue_.top();
    queue_.pop();
    step(e);
  }
}

}  // namespace hi::des
