// hi-opt: instantaneous channel interface consumed by the network
// simulator, plus the two standard implementations (static matrix for
// deterministic tests; body channel = synthetic average matrix +
// Gauss-Markov fading per link).
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "channel/path_loss.hpp"
#include "channel/temporal.hpp"
#include "common/rng.hpp"

namespace hi::channel {

/// Abstract instantaneous channel.  path_loss_db() may be stateful
/// (fading processes advance); times must be non-decreasing per link,
/// which the event-driven simulator guarantees.
class ChannelModel {
 public:
  virtual ~ChannelModel() = default;

  /// Instantaneous path loss PL(i,j,t) in dB.
  virtual double path_loss_db(int i, int j, double t) = 0;

  /// Batched form: out[k] = PL(i, js[k], t) for k in [0, n).  The medium
  /// samples every receiver of one transmission through this, so crowd
  /// channels can amortize the per-call index decomposition over the
  /// whole receiver set.  The default delegates to path_loss_db() in
  /// array order, so overriding it is purely an optimization: any
  /// override MUST draw the same fade samples in the same order
  /// (determinism contract — golden fingerprints pin the draws).
  virtual void path_loss_batch_db(int i, const int* js, std::size_t n,
                                  double t, double* out) {
    for (std::size_t k = 0; k < n; ++k) {
      out[k] = path_loss_db(i, js[k], t);
    }
  }

  /// Time-average path loss PL̄(i,j) in dB.
  [[nodiscard]] virtual double mean_path_loss_db(int i, int j) const = 0;
};

/// Deterministic channel: PL(i,j,t) = PL̄(i,j).  Used by unit tests and by
/// the lossless-limit validation of the analytic power model.
class StaticChannel final : public ChannelModel {
 public:
  explicit StaticChannel(PathLossMatrix avg) : avg_(std::move(avg)) {}

  double path_loss_db(int i, int j, double /*t*/) override {
    return avg_.db(i, j);
  }
  [[nodiscard]] double mean_path_loss_db(int i, int j) const override {
    return avg_.db(i, j);
  }

 private:
  PathLossMatrix avg_;
};

/// Fading parameters of the body channel.  The fade std-dev grows with
/// link distance (limb-to-limb links flap more than trunk links under
/// body movement), matching the qualitative behaviour of the measured
/// WBAN channels the paper builds on.
struct BodyChannelParams {
  double sigma_base_db = 5.0;   ///< fade std-dev of a zero-length link
  double sigma_per_m_db = 4.0;  ///< additional std-dev per meter
  double sigma_max_db = 10.0;   ///< cap
  double tau_s = 1.0;           ///< decorrelation time constant
};

/// Average matrix + per-link Gauss-Markov fading.  Links are symmetric:
/// (i,j) and (j,i) share one fade process.
///
/// All kNumLocations·(kNumLocations-1)/2 link states (memoized average
/// path loss + fade process) are built eagerly at construction into one
/// flat upper-triangle array, so the per-packet hot call path_loss_db()
/// is an index computation plus one Gauss-Markov step — no map lookup,
/// no lazy-init branch (DESIGN.md §11).  Draw-stream equivalence with
/// the historical lazy map: each fade's substream comes from a const
/// Rng::fork keyed only by the pair, and constructing a fade draws
/// nothing, so eager init produces bit-identical trajectories.
class BodyChannel final : public ChannelModel {
 public:
  BodyChannel(PathLossMatrix avg, BodyChannelParams params, Rng rng);

  double path_loss_db(int i, int j, double t) override;
  /// Devirtualized inner loop (one virtual dispatch per receiver set
  /// instead of one per pair); sample order matches the default exactly.
  void path_loss_batch_db(int i, const int* js, std::size_t n, double t,
                          double* out) override;
  [[nodiscard]] double mean_path_loss_db(int i, int j) const override;

  /// Fade std-dev assigned to link (i,j) in dB.
  [[nodiscard]] double link_sigma_db(int i, int j) const;

 private:
  /// One symmetric link's memoized state.
  struct LinkState {
    double base_db;  ///< PL̄(i,j), cached out of the matrix
    GaussMarkovFade fade;
  };

  /// Upper-triangle index of the unordered pair {i,j}, i != j.
  [[nodiscard]] static std::size_t link_index(int i, int j);

  PathLossMatrix avg_;
  BodyChannelParams params_;
  std::vector<LinkState> links_;  ///< all pairs, built at construction
};

/// Convenience factory: calibrated body matrix + default fading.  This
/// is the channel every experiment uses unless it injects its own.
[[nodiscard]] std::unique_ptr<ChannelModel> make_default_body_channel(
    std::uint64_t seed, const BodyChannelParams& params = {});

}  // namespace hi::channel
