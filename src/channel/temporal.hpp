// hi-opt: temporal variation δPL(t) of a body-channel link.
//
// The paper (Eq. 1) models the instantaneous path loss as
//     PL(i,j,t) = PL̄(i,j) + δPL(i,j,t)
// where δPL(t) is drawn from a pdf conditioned on the previously observed
// value δPL(t-Δt) and the elapsed time Δt — "if little time has passed,
// δPL(t) does not significantly differ from δPL(t-Δt)".  The empirical
// pdfs (Smith et al. / Castalia) are not available offline; we substitute
// the first-order Gauss-Markov (discretized Ornstein-Uhlenbeck) process
// that has exactly this conditional structure:
//
//     δ(t) = ρ·δ(t-Δt) + σ·sqrt(1-ρ²)·N(0,1),   ρ = exp(-Δt/τ).
//
// σ is the stationary standard deviation of the fade (dB) and τ the
// decorrelation time constant (seconds, body-movement timescale).  The
// process is stationary with δ ~ N(0, σ²) and autocorrelation exp(-Δt/τ),
// both of which the test suite verifies.
#pragma once

#include "common/rng.hpp"

namespace hi::channel {

/// Parameters of the Gauss-Markov fade process for one link.
struct GaussMarkovParams {
  double sigma_db = 6.0;  ///< stationary std-dev of the fade in dB
  double tau_s = 1.0;     ///< decorrelation time constant in seconds
};

/// One link's temporal fade state.  Sampling at monotonically
/// non-decreasing times yields a stationary Gauss-Markov trajectory;
/// the first sample is drawn from the stationary distribution.
class GaussMarkovFade {
 public:
  GaussMarkovFade(GaussMarkovParams params, Rng rng);

  /// Returns δPL at time t (dB).  `t` must be >= the previous call's time.
  double sample_db(double t);

  /// Last sampled value without advancing the process.
  [[nodiscard]] double current_db() const { return delta_db_; }

  [[nodiscard]] const GaussMarkovParams& params() const { return params_; }

 private:
  GaussMarkovParams params_;
  Rng rng_;
  double last_t_ = 0.0;
  double delta_db_ = 0.0;
  bool initialized_ = false;
};

}  // namespace hi::channel
