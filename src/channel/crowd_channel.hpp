// hi-opt: shared-medium channel for M co-located human intranets.
//
// Node identity at this layer is a *global channel id*
//     g = body * kNumLocations + location,
// so the CrowdChannel is an ordinary ChannelModel over M·10 points:
//
//   * intra-body pairs (same body) delegate to a per-body BodyChannel —
//     body b's fade trajectories are bit-identical to a standalone
//     BodyChannel seeded with body_channel_seed(seed, b), and
//     body_channel_seed(seed, 0) == seed, which is what makes an M=1
//     crowd run collapse bit-exactly onto the single-body simulator
//     (DESIGN.md §15);
//
//   * inter-body pairs use a log-distance law over the 3-D distance
//     between the two nodes' world positions (body origin on the floor
//     plane + the location's on-body offset), a trunk-shadowing penalty
//     per back-side endpoint, and a per-(node, node) Gauss-Markov fade.
//
// All M(M-1)/2 · 100 cross-link states live in one flat pair-major
// array built eagerly at construction — the hot path (one transmission
// fanning out to every other radio via path_loss_batch_db) is index
// arithmetic plus one Gauss-Markov step per receiver, no map lookups.
// M=1 builds no cross state and draws nothing beyond body 0's intra
// links.
//
// Cross-fade coherence: a dense crowd transmits every few milliseconds
// while the fade decorrelates on the body-movement timescale τ (1 s by
// default), so re-stepping the Gauss-Markov process per transmission
// would burn an exp + a normal draw to move the fade by noise-level
// amounts.  Each cross link therefore holds its sampled value for
// τ/64 and re-steps (with the true total elapsed Δt, preserving the
// process statistics at refresh points) only after that coherence
// window expires.  Purely deterministic — the refresh schedule depends
// on sample times alone — and intra-body links are untouched, so the
// M=1 collapse contract is unaffected.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "channel/channel.hpp"

namespace hi::channel {

/// Inter-body propagation parameters (2.4 GHz off-body, crowd regime:
/// log-distance with an indoor-ish exponent, plus creeping-wave
/// shadowing when an endpoint sits on the back of its body).
struct InterBodyParams {
  double pl0_db = 55.0;       ///< loss at the reference distance d0
  double d0_m = 1.0;          ///< reference distance
  double exponent = 3.0;      ///< inter-body path-loss exponent
  double shadow_db = 7.0;     ///< per back-side endpoint penalty
  double sigma_db = 6.0;      ///< cross-link fade std-dev
  double tau_s = 1.0;         ///< cross-link decorrelation time
  double min_distance_m = 0.2;  ///< distance floor (stacked bodies)
};

/// Where one body stands on the floor plane (meters).
struct BodyPose {
  double x_m = 0.0;
  double y_m = 0.0;
};

/// See file comment.
class CrowdChannel final : public ChannelModel {
 public:
  /// One body per pose.  `seed` is the crowd channel root; body 0's
  /// intra-body channel is seeded with `seed` itself (M=1 contract).
  CrowdChannel(std::vector<BodyPose> poses, BodyChannelParams intra,
               InterBodyParams inter, std::uint64_t seed);

  double path_loss_db(int gi, int gj, double t) override;
  void path_loss_batch_db(int gi, const int* gjs, std::size_t n, double t,
                          double* out) override;
  [[nodiscard]] double mean_path_loss_db(int gi, int gj) const override;

  [[nodiscard]] int bodies() const { return static_cast<int>(poses_.size()); }

  /// Average cross-link loss between node li of body a and node lj of
  /// body b (a != b); exposed for tests.
  [[nodiscard]] double cross_base_db(int a, int li, int b, int lj) const;

  /// Intra-body channel seed of body `b` under crowd root `seed`.
  /// body_channel_seed(seed, 0) == seed, exactly — the M=1 contract.
  [[nodiscard]] static std::uint64_t body_channel_seed(std::uint64_t seed,
                                                      int b);

 private:
  struct CrossLink {
    double base_db;
    /// End of the current coherence window: samples before this time
    /// reuse fade.current_db() without advancing the process.
    double hold_until;
    GaussMarkovFade fade;
  };

  /// Flat index of the cross link (a, li) -> (b, lj) with a < b.
  [[nodiscard]] std::size_t cross_index(int a, int li, int b, int lj) const;

  /// Coherence-window sample: reuses the held fade inside the window,
  /// re-steps the process (and opens a new window) outside it.
  double sample_cross_db(CrossLink& link, double t);

  std::vector<BodyPose> poses_;
  InterBodyParams inter_;
  /// Cross-fade coherence window, τ/64 (see file comment).
  double cross_coherence_s_ = 0.0;
  /// Per-body intra channels, indexed by body.
  std::vector<std::unique_ptr<BodyChannel>> intra_;
  /// Pair-major flat table: pair(a<b) * 100 + li * 10 + lj.
  std::vector<CrossLink> cross_;
};

/// Factory mirroring make_default_body_channel: calibrated intra matrix,
/// default fading, the given poses and inter-body parameters.
[[nodiscard]] std::unique_ptr<CrowdChannel> make_crowd_channel(
    std::uint64_t seed, std::vector<BodyPose> poses,
    const BodyChannelParams& intra = {}, const InterBodyParams& inter = {});

}  // namespace hi::channel
