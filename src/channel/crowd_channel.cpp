#include "channel/crowd_channel.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "channel/locations.hpp"
#include "channel/path_loss.hpp"
#include "common/assert.hpp"

namespace hi::channel {

namespace {

/// 3-D world position of location `loc` on a body standing at `pose`.
struct WorldPos {
  double x, y, z;
};

WorldPos world_position(const BodyPose& pose, int loc) {
  const LocationInfo& info = locations()[static_cast<std::size_t>(loc)];
  return WorldPos{pose.x_m + info.x, pose.y_m + info.y, info.z};
}

bool on_back(int loc) {
  return locations()[static_cast<std::size_t>(loc)].side == BodySide::kBack;
}

}  // namespace

std::uint64_t CrowdChannel::body_channel_seed(std::uint64_t seed, int b) {
  if (b == 0) {
    return seed;  // M=1 collapses onto make_default_body_channel(seed)
  }
  return Rng{seed}.fork("crowd.intra").fork(static_cast<std::uint64_t>(b))
      .next_u64();
}

CrowdChannel::CrowdChannel(std::vector<BodyPose> poses,
                           BodyChannelParams intra, InterBodyParams inter,
                           std::uint64_t seed)
    : poses_(std::move(poses)), inter_(inter) {
  const int m = static_cast<int>(poses_.size());
  HI_REQUIRE(m >= 1, "CrowdChannel: need at least one body");
  HI_REQUIRE(inter_.exponent > 0.0 && inter_.d0_m > 0.0 &&
                 inter_.min_distance_m > 0.0,
             "CrowdChannel: inter-body law parameters must be positive");
  intra_.reserve(static_cast<std::size_t>(m));
  for (int b = 0; b < m; ++b) {
    intra_.push_back(std::make_unique<BodyChannel>(
        calibrated_body_path_loss(), intra, Rng{body_channel_seed(seed, b)}));
  }
  if (m == 1) {
    return;  // no cross links, no extra draws: the single-body channel
  }
  HI_REQUIRE(inter_.tau_s > 0.0,
             "CrowdChannel: cross-fade tau must be positive");
  cross_coherence_s_ = inter_.tau_s / 64.0;
  // Eagerly build every cross link, pair-major.  Substream labels depend
  // only on (pair, li, lj), so the fade trajectory of a given cross link
  // does not depend on how many links a run exercises.
  const Rng inter_root = Rng{seed}.fork("crowd.inter");
  cross_.reserve(static_cast<std::size_t>(m) * (m - 1) / 2 * kNumLocations *
                 kNumLocations);
  std::uint64_t pair = 0;
  for (int a = 0; a < m; ++a) {
    for (int b = a + 1; b < m; ++b, ++pair) {
      const Rng pair_rng = inter_root.fork(pair);
      for (int li = 0; li < kNumLocations; ++li) {
        for (int lj = 0; lj < kNumLocations; ++lj) {
          GaussMarkovParams gm;
          gm.sigma_db = inter_.sigma_db;
          gm.tau_s = inter_.tau_s;
          const auto label = static_cast<std::uint64_t>(li) * kNumLocations +
                             static_cast<std::uint64_t>(lj);
          cross_.push_back(
              CrossLink{cross_base_db(a, li, b, lj),
                        -std::numeric_limits<double>::infinity(),
                        {gm, pair_rng.fork(label)}});
        }
      }
    }
  }
}

double CrowdChannel::cross_base_db(int a, int li, int b, int lj) const {
  const WorldPos pa = world_position(poses_[static_cast<std::size_t>(a)], li);
  const WorldPos pb = world_position(poses_[static_cast<std::size_t>(b)], lj);
  const double dx = pa.x - pb.x, dy = pa.y - pb.y, dz = pa.z - pb.z;
  const double d = std::max(std::sqrt(dx * dx + dy * dy + dz * dz),
                            inter_.min_distance_m);
  double pl = inter_.pl0_db +
              10.0 * inter_.exponent * std::log10(d / inter_.d0_m);
  if (on_back(li)) pl += inter_.shadow_db;
  if (on_back(lj)) pl += inter_.shadow_db;
  return pl;
}

std::size_t CrowdChannel::cross_index(int a, int li, int b, int lj) const {
  // a < b by the callers' normalization; li belongs to body a.
  const int m = static_cast<int>(poses_.size());
  const std::size_t pair =
      static_cast<std::size_t>(a) * (2 * m - a - 1) / 2 +
      static_cast<std::size_t>(b - a - 1);
  return (pair * kNumLocations + static_cast<std::size_t>(li)) *
             kNumLocations +
         static_cast<std::size_t>(lj);
}

double CrowdChannel::sample_cross_db(CrossLink& link, double t) {
  if (t < link.hold_until) {
    return link.base_db + link.fade.current_db();
  }
  link.hold_until = t + cross_coherence_s_;
  return link.base_db + link.fade.sample_db(t);
}

double CrowdChannel::path_loss_db(int gi, int gj, double t) {
  const int bi = gi / kNumLocations, li = gi % kNumLocations;
  const int bj = gj / kNumLocations, lj = gj % kNumLocations;
  if (bi == bj) {
    return intra_[static_cast<std::size_t>(bi)]->path_loss_db(li, lj, t);
  }
  CrossLink& link = bi < bj
                        ? cross_[cross_index(bi, li, bj, lj)]
                        : cross_[cross_index(bj, lj, bi, li)];
  return sample_cross_db(link, t);
}

void CrowdChannel::path_loss_batch_db(int gi, const int* gjs, std::size_t n,
                                      double t, double* out) {
  const int bi = gi / kNumLocations, li = gi % kNumLocations;
  BodyChannel& home = *intra_[static_cast<std::size_t>(bi)];
  for (std::size_t k = 0; k < n; ++k) {
    const int gj = gjs[k];
    const int bj = gj / kNumLocations, lj = gj % kNumLocations;
    if (bi == bj) {
      out[k] = home.path_loss_db(li, lj, t);
      continue;
    }
    CrossLink& link = bi < bj
                          ? cross_[cross_index(bi, li, bj, lj)]
                          : cross_[cross_index(bj, lj, bi, li)];
    out[k] = sample_cross_db(link, t);
  }
}

double CrowdChannel::mean_path_loss_db(int gi, int gj) const {
  const int bi = gi / kNumLocations, li = gi % kNumLocations;
  const int bj = gj / kNumLocations, lj = gj % kNumLocations;
  if (bi == bj) {
    return intra_[static_cast<std::size_t>(bi)]->mean_path_loss_db(li, lj);
  }
  return bi < bj ? cross_base_db(bi, li, bj, lj)
                 : cross_base_db(bj, lj, bi, li);
}

std::unique_ptr<CrowdChannel> make_crowd_channel(std::uint64_t seed,
                                                 std::vector<BodyPose> poses,
                                                 const BodyChannelParams& intra,
                                                 const InterBodyParams& inter) {
  return std::make_unique<CrowdChannel>(std::move(poses), intra, inter, seed);
}

}  // namespace hi::channel
