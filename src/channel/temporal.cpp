#include "channel/temporal.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace hi::channel {

GaussMarkovFade::GaussMarkovFade(GaussMarkovParams params, Rng rng)
    : params_(params), rng_(rng) {
  HI_REQUIRE(params_.sigma_db >= 0.0, "sigma must be non-negative");
  HI_REQUIRE(params_.tau_s > 0.0, "tau must be positive");
}

double GaussMarkovFade::sample_db(double t) {
  if (!initialized_) {
    initialized_ = true;
    last_t_ = t;
    delta_db_ = rng_.normal(0.0, params_.sigma_db);
    return delta_db_;
  }
  HI_ASSERT_MSG(t >= last_t_, "time went backwards: " << t << " < " << last_t_);
  const double dt = t - last_t_;
  last_t_ = t;
  if (dt == 0.0) {
    return delta_db_;
  }
  const double rho = std::exp(-dt / params_.tau_s);
  const double innovation_sd = params_.sigma_db * std::sqrt(1.0 - rho * rho);
  delta_db_ = rho * delta_db_ + rng_.normal(0.0, innovation_sd);
  return delta_db_;
}

}  // namespace hi::channel
