// hi-opt: the ten candidate on-body node locations of the DAC'17 design
// example (Sec. 4.1): chest, left/right hip, left/right ankle, left/right
// wrist, left upper arm (shoulder), head, and back.
//
// Each location carries an approximate 3-D position on a standing adult
// (meters; x: left(+)/right(-), y: front(+)/back(-), z: height) and a
// body-region tag used by the synthetic path-loss model to apply a trunk
// (non-line-of-sight) shadowing penalty for front<->back links.
#pragma once

#include <array>
#include <string_view>

namespace hi::channel {

/// Number of candidate locations (paper: M = 10).
inline constexpr int kNumLocations = 10;

/// Canonical location indices, matching Sec. 4.1 of the paper.
enum Location : int {
  kChest = 0,
  kLeftHip = 1,
  kRightHip = 2,
  kLeftAnkle = 3,
  kRightAnkle = 4,
  kLeftWrist = 5,
  kRightWrist = 6,
  kLeftUpperArm = 7,
  kHead = 8,
  kBack = 9,
};

/// Gross body side used for the trunk-shadowing term.
enum class BodySide { kFront, kBack };

/// Static description of one location.
struct LocationInfo {
  std::string_view name;
  double x = 0.0;  ///< meters, left positive
  double y = 0.0;  ///< meters, front positive
  double z = 0.0;  ///< meters, height above ground
  BodySide side = BodySide::kFront;
};

/// Lookup table for all kNumLocations locations.
[[nodiscard]] const std::array<LocationInfo, kNumLocations>& locations();

/// Short human-readable name ("chest", "l-hip", ...).
[[nodiscard]] std::string_view location_name(int loc);

/// Straight-line distance between two locations in meters.
[[nodiscard]] double euclidean_distance_m(int i, int j);

/// True when the link crosses the trunk (front <-> back), which the
/// synthetic model penalizes with extra shadowing.
[[nodiscard]] bool crosses_trunk(int i, int j);

}  // namespace hi::channel
