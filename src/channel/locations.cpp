#include "channel/locations.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace hi::channel {

const std::array<LocationInfo, kNumLocations>& locations() {
  static const std::array<LocationInfo, kNumLocations> table = {{
      {"chest", 0.00, 0.10, 1.35, BodySide::kFront},
      {"l-hip", 0.15, 0.05, 0.95, BodySide::kFront},
      {"r-hip", -0.15, 0.05, 0.95, BodySide::kFront},
      {"l-ankle", 0.12, 0.00, 0.10, BodySide::kFront},
      {"r-ankle", -0.12, 0.00, 0.10, BodySide::kFront},
      {"l-wrist", 0.35, 0.05, 0.85, BodySide::kFront},
      {"r-wrist", -0.35, 0.05, 0.85, BodySide::kFront},
      {"l-arm", 0.20, 0.00, 1.45, BodySide::kFront},
      {"head", 0.00, 0.05, 1.70, BodySide::kFront},
      {"back", 0.00, -0.12, 1.30, BodySide::kBack},
  }};
  return table;
}

std::string_view location_name(int loc) {
  HI_REQUIRE(loc >= 0 && loc < kNumLocations, "bad location " << loc);
  return locations()[static_cast<std::size_t>(loc)].name;
}

double euclidean_distance_m(int i, int j) {
  HI_REQUIRE(i >= 0 && i < kNumLocations, "bad location " << i);
  HI_REQUIRE(j >= 0 && j < kNumLocations, "bad location " << j);
  const LocationInfo& a = locations()[static_cast<std::size_t>(i)];
  const LocationInfo& b = locations()[static_cast<std::size_t>(j)];
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  const double dz = a.z - b.z;
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

bool crosses_trunk(int i, int j) {
  HI_REQUIRE(i >= 0 && i < kNumLocations, "bad location " << i);
  HI_REQUIRE(j >= 0 && j < kNumLocations, "bad location " << j);
  return locations()[static_cast<std::size_t>(i)].side !=
         locations()[static_cast<std::size_t>(j)].side;
}

}  // namespace hi::channel
