// hi-opt: trace-driven channel.
//
// The paper evaluates on *measured* path-loss traces (a two-hour
// daily-activity dataset sampled on adult subjects).  This module is the
// hook for that workflow: a ChannelTrace holds regularly-sampled
// PL(i,j,t) series for every location pair, loadable from / savable to
// CSV, and TraceChannel replays one as a ChannelModel (linear
// interpolation between samples, wrapping around at the end so short
// traces can drive long simulations).  record_trace() samples any other
// ChannelModel into a trace — e.g. to freeze a Gauss-Markov realization
// into a reproducible artifact.
#pragma once

#include <iosfwd>
#include <vector>

#include "channel/channel.hpp"

namespace hi::channel {

/// Regularly-sampled path-loss series for all location pairs.
class ChannelTrace {
 public:
  /// `dt_s` seconds between samples, `samples` samples per pair.
  ChannelTrace(double dt_s, std::size_t samples);

  /// Sets PL(i,j) = PL(j,i) at sample index k.
  void set(int i, int j, std::size_t k, double pl_db);

  /// Sample k of pair (i,j).
  [[nodiscard]] double sample(int i, int j, std::size_t k) const;

  /// Path loss at continuous time t: linear interpolation between
  /// samples, wrapping modulo the trace duration.
  [[nodiscard]] double at(int i, int j, double t) const;

  /// Time-average path loss of a pair.
  [[nodiscard]] double mean_db(int i, int j) const;

  [[nodiscard]] double dt_s() const { return dt_s_; }
  [[nodiscard]] std::size_t samples() const { return samples_; }
  [[nodiscard]] double duration_s() const {
    return dt_s_ * static_cast<double>(samples_);
  }

  /// CSV: header `t,pl_0_1,pl_0_2,...,pl_8_9`, one row per sample.
  void save_csv(std::ostream& os) const;

  /// Parses the save_csv format; throws hi::ModelError on malformed
  /// input.
  static ChannelTrace load_csv(std::istream& is);

 private:
  [[nodiscard]] static std::size_t pair_index(int i, int j);

  double dt_s_;
  std::size_t samples_;
  // [pair][sample], pairs in lexicographic (i<j) order.
  std::vector<std::vector<double>> data_;
};

/// Samples `model` every dt_s for duration_s into a trace.
[[nodiscard]] ChannelTrace record_trace(ChannelModel& model,
                                        double duration_s, double dt_s);

/// Replays a trace as an instantaneous channel.
class TraceChannel final : public ChannelModel {
 public:
  explicit TraceChannel(ChannelTrace trace);

  double path_loss_db(int i, int j, double t) override;
  [[nodiscard]] double mean_path_loss_db(int i, int j) const override;

  [[nodiscard]] const ChannelTrace& trace() const { return trace_; }

 private:
  ChannelTrace trace_;
};

}  // namespace hi::channel
