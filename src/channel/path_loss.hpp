// hi-opt: average path-loss matrix  PL̄(i,j)  over the body locations.
//
// The paper infers PL̄ from a two-hour measurement campaign on adult
// subjects (NICTA daily-activity dataset).  That dataset is not available
// offline, so we substitute a synthetic on-body propagation model that
// preserves the properties the DSE algorithm is sensitive to:
//
//   * short trunk links (chest-hip) are strong,
//   * long limb links (chest-ankle, wrist-ankle) are weak,
//   * front<->back links suffer a deep trunk-shadowing penalty
//     (creeping-wave attenuation around the torso),
//   * values fall in the 2.4-GHz on-body range reported in the WBAN
//     literature (~35-90 dB).
//
// The synthetic law is the standard on-body log-distance model
//     PL̄(d) = PL0 + 10 n log10(d / d0) + (trunk ? PLtrunk : 0)
// with PL0 = 35 dB @ d0 = 0.1 m, exponent n = 3.5, PLtrunk = 14 dB.
// Any PathLossMatrix (e.g. from measured data) can be injected instead.
#pragma once

#include <array>

#include "channel/locations.hpp"

namespace hi::channel {

/// Symmetric matrix of average path loss in dB between locations.
class PathLossMatrix {
 public:
  /// Zero-initialized matrix.
  PathLossMatrix();

  /// Average path loss between locations i and j in dB.  PL(i,i) = 0.
  [[nodiscard]] double db(int i, int j) const;

  /// Sets PL(i,j) = PL(j,i) = value_db.
  void set_db(int i, int j, double value_db);

 private:
  std::array<double, kNumLocations * kNumLocations> pl_{};
};

/// Parameters of the synthetic on-body log-distance law.
struct SyntheticPathLossParams {
  double pl0_db = 35.0;        ///< loss at the reference distance
  double d0_m = 0.1;           ///< reference distance
  double exponent = 3.5;       ///< on-body path-loss exponent
  double trunk_penalty_db = 14.0;  ///< extra loss for front<->back links
};

/// Builds the synthetic average path-loss matrix for the ten body
/// locations.  Deterministic; see file comment for the model.
[[nodiscard]] PathLossMatrix synthetic_body_path_loss(
    const SyntheticPathLossParams& params = {});

/// Hand-calibrated average path-loss matrix standing in for the paper's
/// measured two-hour daily-activity dataset.  It reproduces the
/// qualitative structure published WBAN measurement campaigns agree on:
/// trunk links (chest/hip/arm/head) are strong (~58-76 dB), wrist links
/// moderate, and anything involving an ankle or crossing to the back is
/// deeply attenuated (~80-98 dB) — the "deep fading" regime that makes a
/// star topology unreliable and motivates the mesh.  This is the default
/// matrix used by make_default_body_channel().
[[nodiscard]] const PathLossMatrix& calibrated_body_path_loss();

}  // namespace hi::channel
