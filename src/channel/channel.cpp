#include "channel/channel.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace hi::channel {

BodyChannel::BodyChannel(PathLossMatrix avg, BodyChannelParams params, Rng rng)
    : avg_(std::move(avg)), params_(params), rng_(rng) {
  HI_REQUIRE(params_.sigma_base_db >= 0.0 && params_.sigma_per_m_db >= 0.0 &&
                 params_.sigma_max_db >= 0.0,
             "fade std-devs must be non-negative");
  HI_REQUIRE(params_.tau_s > 0.0, "tau must be positive");
}

double BodyChannel::link_sigma_db(int i, int j) const {
  const double d = euclidean_distance_m(i, j);
  return std::min(params_.sigma_base_db + params_.sigma_per_m_db * d,
                  params_.sigma_max_db);
}

double BodyChannel::path_loss_db(int i, int j, double t) {
  if (i == j) {
    return 0.0;
  }
  const auto key = std::minmax(i, j);
  auto it = fades_.find(key);
  if (it == fades_.end()) {
    GaussMarkovParams gm;
    gm.sigma_db = link_sigma_db(i, j);
    gm.tau_s = params_.tau_s;
    // Label the substream by the pair so fade draws are stable under
    // changes elsewhere in the simulation.
    const auto label = static_cast<std::uint64_t>(key.first) * 64 +
                       static_cast<std::uint64_t>(key.second);
    it = fades_.emplace(key, GaussMarkovFade{gm, rng_.fork(label)}).first;
  }
  return avg_.db(i, j) + it->second.sample_db(t);
}

double BodyChannel::mean_path_loss_db(int i, int j) const {
  return avg_.db(i, j);
}

std::unique_ptr<ChannelModel> make_default_body_channel(
    std::uint64_t seed, const BodyChannelParams& params) {
  return std::make_unique<BodyChannel>(calibrated_body_path_loss(), params,
                                       Rng{seed});
}

}  // namespace hi::channel
