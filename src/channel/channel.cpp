#include "channel/channel.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace hi::channel {

std::size_t BodyChannel::link_index(int i, int j) {
  const auto [a, b] = std::minmax(i, j);
  // Row-major upper triangle over n = kNumLocations points.
  return static_cast<std::size_t>(a) * (2 * kNumLocations - a - 1) / 2 +
         static_cast<std::size_t>(b - a - 1);
}

BodyChannel::BodyChannel(PathLossMatrix avg, BodyChannelParams params, Rng rng)
    : avg_(std::move(avg)), params_(params) {
  HI_REQUIRE(params_.sigma_base_db >= 0.0 && params_.sigma_per_m_db >= 0.0 &&
                 params_.sigma_max_db >= 0.0,
             "fade std-devs must be non-negative");
  HI_REQUIRE(params_.tau_s > 0.0, "tau must be positive");
  // Eagerly build every link's fade.  Substream labels depend only on
  // the pair and fork() is const, so the draw streams are identical to
  // the historical create-on-first-sample scheme regardless of which
  // links a run actually exercises.
  links_.reserve(kNumLocations * (kNumLocations - 1) / 2);
  for (int a = 0; a < kNumLocations; ++a) {
    for (int b = a + 1; b < kNumLocations; ++b) {
      GaussMarkovParams gm;
      gm.sigma_db = link_sigma_db(a, b);
      gm.tau_s = params_.tau_s;
      const auto label =
          static_cast<std::uint64_t>(a) * 64 + static_cast<std::uint64_t>(b);
      links_.push_back(LinkState{avg_.db(a, b), {gm, rng.fork(label)}});
    }
  }
}

double BodyChannel::link_sigma_db(int i, int j) const {
  const double d = euclidean_distance_m(i, j);
  return std::min(params_.sigma_base_db + params_.sigma_per_m_db * d,
                  params_.sigma_max_db);
}

double BodyChannel::path_loss_db(int i, int j, double t) {
  if (i == j) {
    return 0.0;
  }
  LinkState& link = links_[link_index(i, j)];
  return link.base_db + link.fade.sample_db(t);
}

void BodyChannel::path_loss_batch_db(int i, const int* js, std::size_t n,
                                     double t, double* out) {
  for (std::size_t k = 0; k < n; ++k) {
    const int j = js[k];
    if (i == j) {
      out[k] = 0.0;
      continue;
    }
    LinkState& link = links_[link_index(i, j)];
    out[k] = link.base_db + link.fade.sample_db(t);
  }
}

double BodyChannel::mean_path_loss_db(int i, int j) const {
  return avg_.db(i, j);
}

std::unique_ptr<ChannelModel> make_default_body_channel(
    std::uint64_t seed, const BodyChannelParams& params) {
  return std::make_unique<BodyChannel>(calibrated_body_path_loss(), params,
                                       Rng{seed});
}

}  // namespace hi::channel
