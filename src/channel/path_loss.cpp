#include "channel/path_loss.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace hi::channel {

PathLossMatrix::PathLossMatrix() { pl_.fill(0.0); }

double PathLossMatrix::db(int i, int j) const {
  HI_REQUIRE(i >= 0 && i < kNumLocations, "bad location " << i);
  HI_REQUIRE(j >= 0 && j < kNumLocations, "bad location " << j);
  return pl_[static_cast<std::size_t>(i) * kNumLocations +
             static_cast<std::size_t>(j)];
}

void PathLossMatrix::set_db(int i, int j, double value_db) {
  HI_REQUIRE(i >= 0 && i < kNumLocations, "bad location " << i);
  HI_REQUIRE(j >= 0 && j < kNumLocations, "bad location " << j);
  HI_REQUIRE(i != j || value_db == 0.0, "PL(i,i) must stay 0");
  pl_[static_cast<std::size_t>(i) * kNumLocations +
      static_cast<std::size_t>(j)] = value_db;
  pl_[static_cast<std::size_t>(j) * kNumLocations +
      static_cast<std::size_t>(i)] = value_db;
}

PathLossMatrix synthetic_body_path_loss(const SyntheticPathLossParams& p) {
  HI_REQUIRE(p.d0_m > 0.0, "reference distance must be positive");
  PathLossMatrix m;
  for (int i = 0; i < kNumLocations; ++i) {
    for (int j = i + 1; j < kNumLocations; ++j) {
      const double d = std::max(euclidean_distance_m(i, j), p.d0_m);
      double pl = p.pl0_db + 10.0 * p.exponent * std::log10(d / p.d0_m);
      if (crosses_trunk(i, j)) {
        pl += p.trunk_penalty_db;
      }
      m.set_db(i, j, pl);
    }
  }
  return m;
}

const PathLossMatrix& calibrated_body_path_loss() {
  // Upper-triangular entries in dB; see the header for the rationale.
  // Order: 0 chest, 1 l-hip, 2 r-hip, 3 l-ankle, 4 r-ankle, 5 l-wrist,
  // 6 r-wrist, 7 l-arm, 8 head, 9 back.
  static const PathLossMatrix matrix = [] {
    PathLossMatrix m;
    const double pl[kNumLocations][kNumLocations] = {
        //  1    2    3    4    5    6    7    8    9
        {0, 64, 64, 94, 94, 74, 74, 62, 64, 82},   // 0 chest
        {0, 0, 66, 80, 86, 74, 78, 72, 76, 72},    // 1 l-hip
        {0, 0, 0, 86, 80, 78, 74, 76, 76, 72},     // 2 r-hip
        {0, 0, 0, 0, 94, 96, 98, 92, 98, 92},      // 3 l-ankle
        {0, 0, 0, 0, 0, 98, 96, 92, 98, 92},       // 4 r-ankle
        {0, 0, 0, 0, 0, 0, 84, 66, 76, 80},        // 5 l-wrist
        {0, 0, 0, 0, 0, 0, 0, 76, 76, 80},         // 6 r-wrist
        {0, 0, 0, 0, 0, 0, 0, 0, 64, 70},          // 7 l-arm
        {0, 0, 0, 0, 0, 0, 0, 0, 0, 66},           // 8 head
        {0, 0, 0, 0, 0, 0, 0, 0, 0, 0},            // 9 back
    };
    for (int i = 0; i < kNumLocations; ++i) {
      for (int j = i + 1; j < kNumLocations; ++j) {
        m.set_db(i, j, pl[i][j]);
      }
    }
    return m;
  }();
  return matrix;
}

}  // namespace hi::channel
