#include "channel/trace.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "common/assert.hpp"

namespace hi::channel {

namespace {
constexpr std::size_t kNumPairs =
    static_cast<std::size_t>(kNumLocations) * (kNumLocations - 1) / 2;
}  // namespace

std::size_t ChannelTrace::pair_index(int i, int j) {
  HI_REQUIRE(i >= 0 && i < kNumLocations && j >= 0 && j < kNumLocations &&
                 i != j,
             "bad pair (" << i << "," << j << ")");
  if (i > j) {
    std::swap(i, j);
  }
  // Index of (i,j), i<j, in lexicographic order.
  const int before =
      i * kNumLocations - i * (i + 1) / 2;  // pairs with first < i
  return static_cast<std::size_t>(before + (j - i - 1));
}

ChannelTrace::ChannelTrace(double dt_s, std::size_t samples)
    : dt_s_(dt_s),
      samples_(samples),
      data_(kNumPairs, std::vector<double>(samples, 0.0)) {
  HI_REQUIRE(dt_s_ > 0.0, "sampling interval must be positive");
  HI_REQUIRE(samples_ >= 1, "trace needs at least one sample");
}

void ChannelTrace::set(int i, int j, std::size_t k, double pl_db) {
  HI_REQUIRE(k < samples_, "sample index " << k << " out of range");
  data_[pair_index(i, j)][k] = pl_db;
}

double ChannelTrace::sample(int i, int j, std::size_t k) const {
  HI_REQUIRE(k < samples_, "sample index " << k << " out of range");
  return data_[pair_index(i, j)][k];
}

double ChannelTrace::at(int i, int j, double t) const {
  if (i == j) {
    return 0.0;
  }
  const std::vector<double>& series = data_[pair_index(i, j)];
  if (samples_ == 1) {
    return series[0];
  }
  const double duration = duration_s();
  double phase = std::fmod(t, duration);
  if (phase < 0.0) {
    phase += duration;
  }
  const double pos = phase / dt_s_;
  const auto k0 = static_cast<std::size_t>(pos);
  const std::size_t k1 = (k0 + 1) % samples_;  // wrap for the last segment
  const double frac = pos - static_cast<double>(k0);
  return series[k0] * (1.0 - frac) + series[k1] * frac;
}

double ChannelTrace::mean_db(int i, int j) const {
  if (i == j) {
    return 0.0;
  }
  const std::vector<double>& series = data_[pair_index(i, j)];
  double acc = 0.0;
  for (double v : series) acc += v;
  return acc / static_cast<double>(samples_);
}

void ChannelTrace::save_csv(std::ostream& os) const {
  // Full round-trip precision (the load path re-parses with stod).
  const auto old_precision = os.precision(17);
  os << 't';
  for (int i = 0; i < kNumLocations; ++i) {
    for (int j = i + 1; j < kNumLocations; ++j) {
      os << ",pl_" << i << '_' << j;
    }
  }
  os << '\n';
  for (std::size_t k = 0; k < samples_; ++k) {
    os << static_cast<double>(k) * dt_s_;
    for (std::size_t p = 0; p < kNumPairs; ++p) {
      os << ',' << data_[p][k];
    }
    os << '\n';
  }
  os.precision(old_precision);
}

ChannelTrace ChannelTrace::load_csv(std::istream& is) {
  std::string line;
  HI_REQUIRE(std::getline(is, line), "trace CSV: missing header");
  // Collect all rows first to size the trace.
  std::vector<std::vector<double>> rows;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::vector<double> row;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      try {
        row.push_back(std::stod(cell));
      } catch (const std::exception&) {
        throw ModelError("trace CSV: bad number '" + cell + "'");
      }
    }
    HI_REQUIRE(row.size() == kNumPairs + 1,
               "trace CSV: row has " << row.size() << " fields, expected "
                                     << kNumPairs + 1);
    rows.push_back(std::move(row));
  }
  HI_REQUIRE(rows.size() >= 1, "trace CSV: no samples");
  const double dt = rows.size() >= 2 ? rows[1][0] - rows[0][0] : 1.0;
  HI_REQUIRE(dt > 0.0, "trace CSV: non-increasing timestamps");
  ChannelTrace trace(dt, rows.size());
  for (std::size_t k = 0; k < rows.size(); ++k) {
    std::size_t p = 1;
    for (int i = 0; i < kNumLocations; ++i) {
      for (int j = i + 1; j < kNumLocations; ++j) {
        trace.set(i, j, k, rows[k][p++]);
      }
    }
  }
  return trace;
}

ChannelTrace record_trace(ChannelModel& model, double duration_s,
                          double dt_s) {
  HI_REQUIRE(duration_s > 0.0 && dt_s > 0.0,
             "record_trace: duration and dt must be positive");
  const auto samples =
      static_cast<std::size_t>(std::ceil(duration_s / dt_s));
  ChannelTrace trace(dt_s, samples);
  for (std::size_t k = 0; k < samples; ++k) {
    const double t = static_cast<double>(k) * dt_s;
    for (int i = 0; i < kNumLocations; ++i) {
      for (int j = i + 1; j < kNumLocations; ++j) {
        trace.set(i, j, k, model.path_loss_db(i, j, t));
      }
    }
  }
  return trace;
}

TraceChannel::TraceChannel(ChannelTrace trace) : trace_(std::move(trace)) {}

double TraceChannel::path_loss_db(int i, int j, double t) {
  return trace_.at(i, j, t);
}

double TraceChannel::mean_path_loss_db(int i, int j) const {
  return trace_.mean_db(i, j);
}

}  // namespace hi::channel
