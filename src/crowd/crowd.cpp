#include "crowd/crowd.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <limits>
#include <numeric>
#include <utility>

#include "channel/locations.hpp"
#include "common/assert.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "exec/thread_pool.hpp"
#include "net/node_stack.hpp"
#include "store/crowd_codec.hpp"

namespace hi::crowd {

namespace {

using net::detail::NodeBundle;

/// Canonical body order: ranks sorted by (y, x), input index breaking
/// ties.  order[rank] = input placement index.  Everything the RNG or
/// the channel sees is keyed by rank, so relabeling the placement list
/// cannot change any body's simulated bits.
std::vector<int> canonical_order(
    const std::vector<model::BodyPlacement>& pos) {
  std::vector<int> order(pos.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&pos](int a, int b) {
    const auto& pa = pos[static_cast<std::size_t>(a)];
    const auto& pb = pos[static_cast<std::size_t>(b)];
    if (pa.y_m != pb.y_m) return pa.y_m < pb.y_m;
    return pa.x_m < pb.x_m;
  });
  return order;
}

/// RNG lane of the body at canonical rank `rank`.  Rank 0's lane IS the
/// run seed — the M=1 collapse onto net::simulate's root.
Rng body_lane(std::uint64_t seed, int rank) {
  if (rank == 0) return Rng{seed};
  return Rng{Rng{seed}
                 .fork("crowd.body")
                 .fork(static_cast<std::uint64_t>(rank))
                 .next_u64()};
}

/// `base` re-targeted at `bodies` bodies.  An explicit placement list
/// must cover the largest swept M; smaller points take its prefix.
model::CrowdScenario scenario_at(const model::CrowdScenario& base,
                                 int bodies) {
  model::CrowdScenario sc = base;
  sc.bodies = bodies;
  if (!base.placement.empty()) {
    HI_REQUIRE(base.placement.size() >= static_cast<std::size_t>(bodies),
               "crowd sweep: explicit placement has "
                   << base.placement.size() << " entries, point needs "
                   << bodies);
    sc.placement.assign(base.placement.begin(),
                        base.placement.begin() + bodies);
  }
  return sc;
}

}  // namespace

std::unique_ptr<channel::CrowdChannel> make_crowd_channel_for(
    const model::CrowdScenario& sc, std::uint64_t seed) {
  const std::vector<model::BodyPlacement> pos = sc.positions();
  const std::vector<int> order = canonical_order(pos);
  std::vector<channel::BodyPose> poses;
  poses.reserve(pos.size());
  for (int idx : order) {
    const model::BodyPlacement& p = pos[static_cast<std::size_t>(idx)];
    poses.push_back(channel::BodyPose{p.x_m, p.y_m});
  }
  channel::InterBodyParams inter;
  inter.pl0_db = sc.inter.pl0_db;
  inter.d0_m = sc.inter.d0_m;
  inter.exponent = sc.inter.exponent;
  inter.shadow_db = sc.inter.shadow_db;
  inter.sigma_db = sc.inter.sigma_db;
  inter.tau_s = sc.inter.tau_s;
  inter.min_distance_m = sc.inter.min_distance_m;
  return channel::make_crowd_channel(seed, std::move(poses), {}, inter);
}

CrowdResult simulate_crowd(const model::CrowdScenario& sc,
                           channel::ChannelModel& channel,
                           const net::SimParams& params) {
  sc.validate();
  const model::NetworkConfig& cfg = sc.cfg;
  const int bodies = sc.bodies;
  const std::vector<model::BodyPlacement> pos = sc.positions();
  const std::vector<int> order = canonical_order(pos);
  const std::vector<int> locs = cfg.topology.locations();
  const int n = static_cast<int>(locs.size());
  HI_REQUIRE(params.duration_s > params.gen_guard_s,
             "simulate_crowd: duration " << params.duration_s
                                         << " s must exceed the guard "
                                         << params.gen_guard_s << " s");
  if (cfg.routing.protocol == model::RoutingProtocol::kStar) {
    HI_REQUIRE(cfg.topology.has(cfg.routing.coordinator),
               "star coordinator location " << cfg.routing.coordinator
                                            << " carries no node");
  }

  des::Kernel kernel;
  // One shared arena for all M networks, pre-sized so the steady-state
  // pending set (a handful of events per node) never grows mid-run.
  kernel.reserve(static_cast<std::size_t>(bodies) *
                 static_cast<std::size_t>(n) * 4);
  net::Medium medium(kernel, channel, params.trace);

  // Bodies are built in canonical rank order: the medium's radio list,
  // the channel's body indices, and the RNG lanes all see ranks, never
  // input indices.
  std::vector<std::unique_ptr<net::LatencyRecorder>> latency(
      static_cast<std::size_t>(bodies));
  std::vector<std::vector<std::unique_ptr<NodeBundle>>> nets(
      static_cast<std::size_t>(bodies));
  for (int rank = 0; rank < bodies; ++rank) {
    const Rng lane = body_lane(params.seed, rank);
    if (params.collect_latency) {
      latency[static_cast<std::size_t>(rank)] =
          std::make_unique<net::LatencyRecorder>();
    }
    auto& nodes = nets[static_cast<std::size_t>(rank)];
    nodes.reserve(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) {
      const int loc = locs[static_cast<std::size_t>(k)];
      std::vector<int> peers;
      peers.reserve(static_cast<std::size_t>(n) - 1);
      for (int other : locs) {
        if (other != loc) peers.push_back(other);
      }
      nodes.push_back(std::make_unique<NodeBundle>(
          kernel, medium, loc, cfg, params,
          /*slot_index=*/k, /*num_slots=*/n, std::move(peers),
          lane.fork(static_cast<std::uint64_t>(loc)),
          latency[static_cast<std::size_t>(rank)].get(),
          /*net_id=*/rank,
          /*channel_id=*/rank * channel::kNumLocations + loc));
    }
  }

  const double gen_end = params.duration_s - params.gen_guard_s;
  for (auto& nodes : nets) {
    for (auto& nb : nodes) {
      nb->mac->start();
      nb->app->start(gen_end);
    }
  }
  kernel.run_until(params.duration_s);

  // ---- Metrics: per body first (canonical order, so every accumulator
  // below is permutation-invariant), then the crowd aggregate.
  CrowdResult out;
  out.per_body.resize(static_cast<std::size_t>(bodies));
  out.summary.nodes.resize(static_cast<std::size_t>(bodies));
  RunningStats body_pdr, body_mean_power;
  double worst = 0.0;
  double min_pdr = std::numeric_limits<double>::infinity();
  std::uint64_t foreign_heard = 0, foreign_decoded = 0;
  for (int rank = 0; rank < bodies; ++rank) {
    const int input = order[static_cast<std::size_t>(rank)];
    const auto& nodes = nets[static_cast<std::size_t>(rank)];
    net::SimResult& br = out.per_body[static_cast<std::size_t>(input)];
    br.duration_s = params.duration_s;
    if (latency[static_cast<std::size_t>(rank)] != nullptr) {
      br.latency = latency[static_cast<std::size_t>(rank)]->summary();
    }
    net::detail::summarize_nodes(nodes, cfg, params, br);

    body_pdr.add(br.pdr);
    body_mean_power.add(br.mean_power_mw);
    worst = std::max(worst, br.worst_power_mw);
    min_pdr = std::min(min_pdr, br.pdr);

    // One summary row per body: stats summed over the body's nodes.
    net::NodeResult row;
    row.location = input;
    row.pdr = br.pdr;
    row.power_mw = br.worst_power_mw;
    for (const net::NodeResult& nr : br.nodes) {
      row.app_sent += nr.app_sent;
      row.radio.tx_packets += nr.radio.tx_packets;
      row.radio.rx_ok += nr.radio.rx_ok;
      row.radio.rx_corrupted += nr.radio.rx_corrupted;
      row.radio.rx_missed += nr.radio.rx_missed;
      row.radio.rx_aborted += nr.radio.rx_aborted;
      row.mac.enqueued += nr.mac.enqueued;
      row.mac.sent += nr.mac.sent;
      row.mac.dropped_buffer += nr.mac.dropped_buffer;
      row.mac.backoffs += nr.mac.backoffs;
      row.routing.originated += nr.routing.originated;
      row.routing.delivered += nr.routing.delivered;
      row.routing.duplicates += nr.routing.duplicates;
      row.routing.relayed += nr.routing.relayed;
    }
    for (const auto& nb : nodes) {
      foreign_heard += nb->radio.crowd_stats().foreign_heard;
      foreign_decoded += nb->radio.crowd_stats().foreign_decoded;
    }
    out.summary.nodes[static_cast<std::size_t>(input)] = row;
  }

  net::SimResult& s = out.summary;
  s.pdr = body_pdr.mean();
  s.worst_power_mw = worst;
  s.mean_power_mw = body_mean_power.mean();
  s.nlt_s = worst > 0.0 ? cfg.battery_j / mw_to_w(worst) : 0.0;
  s.duration_s = params.duration_s;
  s.medium = medium.stats();
  s.events = kernel.events_processed();
  s.crowd.present = true;
  s.crowd.bodies = bodies;
  s.crowd.min_body_pdr = min_pdr;
  s.crowd.cross_offered = s.medium.cross_offered;
  s.crowd.cross_below_sensitivity = s.medium.cross_below_sensitivity;
  s.crowd.foreign_heard = foreign_heard;
  s.crowd.foreign_decoded = foreign_decoded;

  if (params.trace != nullptr) {
    params.trace->record(obs::TraceEvent{
        params.duration_s, obs::TraceKind::kKernel, -1, -1,
        static_cast<std::int64_t>(kernel.events_processed()),
        static_cast<double>(kernel.events_cancelled()),
        static_cast<double>(kernel.heap_highwater())});
  }
  if (params.metrics != nullptr) {
    obs::MetricsRegistry& m = *params.metrics;
    m.counter("net.crowd_runs").add(1);
    m.counter("net.crowd_bodies").add(static_cast<std::uint64_t>(bodies));
    m.counter("net.crowd_cross_offered").add(s.crowd.cross_offered);
    m.counter("net.crowd_cross_below_sensitivity")
        .add(s.crowd.cross_below_sensitivity);
    m.counter("net.crowd_foreign_heard").add(foreign_heard);
    m.counter("net.crowd_foreign_decoded").add(foreign_decoded);
    m.counter("des.events").add(kernel.events_processed());
  }
  return out;
}

CrowdResult simulate_crowd_averaged(const model::CrowdScenario& sc,
                                    const net::SimParams& params, int runs) {
  HI_REQUIRE(runs >= 1, "simulate_crowd_averaged: need at least one run");
  // Same replication seeding as net::simulate_averaged — fork labels and
  // channel-seed whitening included — so an M=1 crowd average collapses
  // onto the single-body average bit for bit.
  Rng seeder(params.seed);
  Rng channel_seeder(params.channel_seed != 0 ? params.channel_seed
                                              : params.seed);
  CrowdResult first;
  RunningStats pdr_acc, worst_acc, mean_acc, min_pdr_acc;
  double events_total = 0.0;
  std::uint64_t cross_offered = 0, cross_below = 0;
  std::uint64_t foreign_heard = 0, foreign_decoded = 0;
  for (int r = 0; r < runs; ++r) {
    net::SimParams run_params = params;
    run_params.seed = seeder.fork(static_cast<std::uint64_t>(r)).next_u64();
    auto channel = make_crowd_channel_for(
        sc, channel_seeder.fork(static_cast<std::uint64_t>(r)).next_u64() ^
                0xC0FFEE);
    CrowdResult one = simulate_crowd(sc, *channel, run_params);
    pdr_acc.add(one.summary.pdr);
    worst_acc.add(one.summary.worst_power_mw);
    mean_acc.add(one.summary.mean_power_mw);
    min_pdr_acc.add(one.summary.crowd.min_body_pdr);
    events_total += static_cast<double>(one.summary.events);
    cross_offered += one.summary.crowd.cross_offered;
    cross_below += one.summary.crowd.cross_below_sensitivity;
    foreign_heard += one.summary.crowd.foreign_heard;
    foreign_decoded += one.summary.crowd.foreign_decoded;
    if (r == 0) {
      first = std::move(one);
    }
  }
  CrowdResult avg = std::move(first);
  net::SimResult& s = avg.summary;
  s.pdr = pdr_acc.mean();
  s.worst_power_mw = worst_acc.mean();
  s.mean_power_mw = mean_acc.mean();
  s.nlt_s = s.worst_power_mw > 0.0
                ? sc.cfg.battery_j / mw_to_w(s.worst_power_mw)
                : 0.0;
  s.events = static_cast<std::uint64_t>(events_total);
  s.crowd.min_body_pdr = min_pdr_acc.mean();
  s.crowd.cross_offered = cross_offered;
  s.crowd.cross_below_sensitivity = cross_below;
  s.crowd.foreign_heard = foreign_heard;
  s.crowd.foreign_decoded = foreign_decoded;
  return avg;
}

dse::Evaluation to_evaluation(const CrowdResult& cr) {
  dse::Evaluation ev;
  ev.detail = cr.summary;
  ev.pdr = cr.summary.pdr;
  ev.power_mw = cr.summary.worst_power_mw;
  ev.nlt_s = cr.summary.nlt_s;
  return ev;
}

SweepResult sweep(const model::CrowdScenario& base, const net::SimParams& sim,
                  const SweepOptions& opt) {
  HI_REQUIRE(!opt.bodies.empty(), "crowd sweep: empty body-count list");
  const std::size_t count = opt.bodies.size();
  std::vector<model::CrowdScenario> points;
  std::vector<store::Digest> fps;
  points.reserve(count);
  fps.reserve(count);
  for (int m : opt.bodies) {
    points.push_back(scenario_at(base, m));
    points.back().validate();
    fps.push_back(store::crowd_point_fingerprint(points.back(), sim,
                                                 opt.runs));
  }

  SweepResult out;
  out.points.resize(count);
  // Probe the store first so only genuine misses pay for a worker slot.
  std::vector<bool> need(count, true);
  for (std::size_t i = 0; i < count; ++i) {
    out.points[i].bodies = opt.bodies[i];
    if (opt.store == nullptr) continue;
    if (const dse::Evaluation* hit =
            opt.store->find(fps[i], points[i].cfg)) {
      out.points[i].from_store = true;
      out.points[i].eval = *hit;
      need[i] = false;
    }
  }

  net::SimParams sp = sim;
  if (opt.metrics != nullptr) sp.metrics = opt.metrics;
  const auto compute = [&](std::size_t i) {
    return to_evaluation(simulate_crowd_averaged(points[i], sp, opt.runs));
  };
  if (opt.threads > 0) {
    // Every point's randomness derives from the sweep roots alone, so
    // the fan-out is thread-count invariant (and tested to be).
    exec::ThreadPool pool(opt.threads);
    std::vector<std::future<dse::Evaluation>> futs(count);
    for (std::size_t i = 0; i < count; ++i) {
      if (need[i]) futs[i] = pool.submit([&compute, i] { return compute(i); });
    }
    for (std::size_t i = 0; i < count; ++i) {
      if (need[i]) out.points[i].eval = futs[i].get();
    }
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      if (need[i]) out.points[i].eval = compute(i);
    }
  }

  // Commit in sweep order: write-through, honest accounting, progress.
  for (std::size_t i = 0; i < count; ++i) {
    SweepPoint& p = out.points[i];
    if (p.from_store) {
      ++out.store_hits;
    } else {
      ++out.simulations;
      if (opt.store != nullptr) {
        opt.store->put(fps[i], points[i].cfg, p.eval);
      }
    }
    if (opt.metrics != nullptr) {
      obs::MetricsRegistry& m = *opt.metrics;
      m.counter("crowd.points").add(1);
      if (p.from_store) {
        m.counter("crowd.store_hits").add(1);
        // Same resume-accounting channel the DSE layer uses, so "zero
        // re-simulation" is asserted the same way everywhere.
        m.counter("dse.store_hits").add(1);
      } else {
        m.counter("crowd.simulations").add(1);
      }
    }
    if (opt.progress) opt.progress(p);
  }
  if (opt.store != nullptr) opt.store->sync();
  return out;
}

}  // namespace hi::crowd
