// hi-opt: hi::crowd — multi-body simulation on a shared medium.
//
// Scales the single-body simulator to M co-located human intranets:
// every body runs its own coordinator, topology, and traffic (one
// NetworkConfig, M instances), all radios share one Medium over a
// channel::CrowdChannel, and cross-network transmissions interfere at
// the radio layer exactly like intra-network ones — they occupy the
// medium, corrupt overlapping receptions under the capture rule, and
// are dropped only after a successful decode (the net-id filter), so a
// dense crowd collapses PDR the way a real shared band does.
//
// Determinism contracts (DESIGN.md §15):
//
//   * M=1 collapse — simulate_crowd with one body is bit-identical to
//     net::simulate: body 0's RNG lane IS params.seed, the crowd
//     channel degenerates to the single BodyChannel, and the node
//     stacks + metrics come from the same net::detail code.
//
//   * body-relabeling invariance — bodies are built in canonical
//     placement order (sorted by (y, x, input index)), and each body's
//     RNG lane is keyed by canonical rank, so permuting the placement
//     list permutes CrowdResult::per_body but leaves every per-body
//     result bit-identical.
//
//   * thread invariance — sweep() fans points out over a thread pool
//     but every point's randomness is derived from the sweep roots
//     alone; results are bit-identical at any thread count.
//
// Durability: sweep() keys each point by
// store::crowd_point_fingerprint and serves repeats from the EvalStore
// (counted as store hits, dse.store_hits included), so a killed sweep
// resumed with the same store re-simulates nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "channel/crowd_channel.hpp"
#include "dse/evaluator.hpp"
#include "model/crowd.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "store/store.hpp"

namespace hi::crowd {

/// Outcome of one crowd run.
struct CrowdResult {
  /// Crowd-level aggregate.  pdr is the mean over bodies of each body's
  /// Eq. (7) PDR, worst/mean power aggregate the per-body values the
  /// same way simulate's lifetime block does, `medium`/`events` are
  /// global (the shared medium and the one kernel), `nodes` holds one
  /// row per body (location = body index in *input* placement order,
  /// stats summed over the body's nodes), and `crowd` is present with
  /// the coexistence counters.
  net::SimResult summary;
  /// Full per-body results in input placement order.  Body-local node
  /// rows, metrics from the shared net::detail::summarize_nodes — for
  /// M == 1 per_body[0] matches the aggregate's metric fields.
  std::vector<net::SimResult> per_body;
};

/// Crowd channel for `sc`'s effective placement under `seed` (bodies in
/// canonical placement order, matching simulate_crowd's build order).
[[nodiscard]] std::unique_ptr<channel::CrowdChannel> make_crowd_channel_for(
    const model::CrowdScenario& sc, std::uint64_t seed);

/// One crowd run over the given channel (normally
/// make_crowd_channel_for(sc, ...); any ChannelModel over
/// bodies × kNumLocations global ids works).  See the file comment for
/// the determinism contracts; `params` is the same knob set as
/// net::simulate, with `params.seed` as body 0's (canonical) RNG lane.
[[nodiscard]] CrowdResult simulate_crowd(const model::CrowdScenario& sc,
                                         channel::ChannelModel& channel,
                                         const net::SimParams& params);

/// `runs` independent replications (fresh crowd channel + fresh seeds,
/// derived from params exactly like net::simulate_averaged — same fork
/// labels, same ^ 0xC0FFEE channel-seed whitening) with averaged
/// metrics; the returned summary carries the first run's per-body rows
/// and the replication-summed coexistence counters.
[[nodiscard]] CrowdResult simulate_crowd_averaged(
    const model::CrowdScenario& sc, const net::SimParams& params, int runs);

/// Flattens a crowd result into the store's Evaluation shape: headline
/// metrics from the aggregate, detail = CrowdResult::summary (per-body
/// rows ride in detail.nodes, coexistence counters in detail.crowd).
[[nodiscard]] dse::Evaluation to_evaluation(const CrowdResult& cr);

/// One sweep point: the crowd evaluated at `bodies`.
struct SweepPoint {
  int bodies = 0;
  bool from_store = false;  ///< served by the EvalStore, not simulated
  dse::Evaluation eval;
};

/// Sweep outcome + honest cost accounting (the resume smoke asserts
/// store_hits == points and simulations == 0 on a warm rerun).
struct SweepResult {
  std::vector<SweepPoint> points;
  std::uint64_t store_hits = 0;
  std::uint64_t simulations = 0;
};

struct SweepOptions {
  std::vector<int> bodies;  ///< M values, evaluated in the given order
  int runs = 3;             ///< replications per point
  /// Worker threads fanning points out (0 = serial, identical results).
  int threads = 0;
  /// Durable cache; null = always simulate.  Points are keyed by
  /// crowd_point_fingerprint, fresh results are written through.
  store::EvalStore* store = nullptr;
  /// Nullable; receives crowd.* / net.crowd_* / dse.store_hits counters.
  obs::MetricsRegistry* metrics = nullptr;
  /// Invoked after each point commits, in sweep order.
  std::function<void(const SweepPoint&)> progress;
};

/// Evaluates `base` at every body count in opt.bodies.  All points
/// share `sim`'s seed roots (common random numbers across crowd sizes:
/// the M-trend is not confounded by seed noise); per-M identity lives
/// in the fingerprint, so the same store serves every M distinctly.
[[nodiscard]] SweepResult sweep(const model::CrowdScenario& base,
                                const net::SimParams& sim,
                                const SweepOptions& opt);

}  // namespace hi::crowd
