// hi-opt: linear-program container.
//
// An hi::lp::Problem is a sparse statement of
//
//     min / max   c' x
//     subject to  for each row:  a_r' x  (<= | = | >=)  b_r
//                 lo_j <= x_j <= hi_j
//
// It is deliberately solver-agnostic: hi::lp::solve_simplex() consumes it
// directly and hi::milp builds on it by marking variables integral and
// re-solving with tightened bounds and added cuts.
#pragma once

#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace hi::lp {

/// Optimization direction.
enum class Objective { kMinimize, kMaximize };

/// Row comparison sense.
enum class Sense { kLessEqual, kEqual, kGreaterEqual };

/// +infinity bound marker.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// One (variable index, coefficient) pair of a sparse row.
struct Term {
  int var = 0;
  double coeff = 0.0;
};

/// A sparse linear constraint `sum(terms) sense rhs`.
struct Constraint {
  std::vector<Term> terms;
  Sense sense = Sense::kLessEqual;
  double rhs = 0.0;
  std::string name;
};

/// Variable metadata.
struct Variable {
  double lower = 0.0;
  double upper = kInf;
  double cost = 0.0;  ///< objective coefficient
  std::string name;
};

/// Sparse LP container; see file comment for semantics.
class Problem {
 public:
  /// Adds a variable and returns its index.
  int add_variable(double lower, double upper, double cost,
                   std::string name = {});

  /// Adds a constraint and returns its row index.  Duplicate variable
  /// indices within one row are allowed and are summed by the solver.
  int add_constraint(std::vector<Term> terms, Sense sense, double rhs,
                     std::string name = {});

  /// Sets the optimization direction (default: minimize).
  void set_objective(Objective obj) { objective_ = obj; }

  /// Replaces the objective coefficient of variable v.
  void set_cost(int v, double cost);

  /// Tightens/replaces the bounds of variable v.
  void set_bounds(int v, double lower, double upper);

  [[nodiscard]] Objective objective() const { return objective_; }
  [[nodiscard]] int num_variables() const {
    return static_cast<int>(vars_.size());
  }
  [[nodiscard]] int num_constraints() const {
    return static_cast<int>(rows_.size());
  }
  [[nodiscard]] const Variable& variable(int v) const;
  [[nodiscard]] const Constraint& constraint(int r) const;

  /// Evaluates the objective at a point (no feasibility check).
  [[nodiscard]] double objective_value(const std::vector<double>& x) const;

  /// Returns the violation of row r at point x (0 when satisfied, positive
  /// magnitude of violation otherwise).
  [[nodiscard]] double row_violation(int r, const std::vector<double>& x,
                                     double tol = 1e-7) const;

  /// True when x satisfies all rows and bounds within tol.
  [[nodiscard]] bool is_feasible(const std::vector<double>& x,
                                 double tol = 1e-7) const;

 private:
  std::vector<Variable> vars_;
  std::vector<Constraint> rows_;
  Objective objective_ = Objective::kMinimize;
};

}  // namespace hi::lp
