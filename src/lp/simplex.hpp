// hi-opt: dense two-phase primal simplex.
//
// Bounded and free variables are reduced to standard form (shift /
// mirror / split), upper bounds become explicit rows, and infeasibility
// is detected with phase-1 artificials.  Bland's pivoting rule is used
// throughout, so the method terminates on every input (no cycling).
//
// This solver is exact enough and fast enough for the Human-Intranet DSE
// MILPs (tens of variables, ~a hundred rows); it is not intended for
// large-scale LPs.
#pragma once

#include <string>
#include <vector>

#include "lp/problem.hpp"

namespace hi::lp {

/// Solver verdict.
enum class Status {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

/// Human-readable status name.
[[nodiscard]] const char* to_string(Status s);

/// Result of an LP solve.
struct Solution {
  Status status = Status::kIterationLimit;
  double objective = 0.0;      ///< in the problem's own sense
  std::vector<double> x;       ///< primal point (original variable space)
  int iterations = 0;          ///< total simplex pivots (both phases)
  int bland_pivots = 0;        ///< pivots taken under the Bland fallback
};

/// Solver knobs.
struct SimplexOptions {
  double tol = 1e-9;          ///< pivot / reduced-cost tolerance
  double feas_tol = 1e-7;     ///< phase-1 feasibility tolerance
  int max_iterations = 0;     ///< 0 => automatic (scales with problem size)
  /// Dantzig pivots granted per phase before the anti-cycling Bland
  /// fallback takes over; 0 => automatic (20 * (rows + columns)).
  /// Tests set it to 1 to force the fallback on degenerate problems.
  int dantzig_stall_budget = 0;
};

/// Solves `p` with the two-phase primal simplex method.
[[nodiscard]] Solution solve_simplex(const Problem& p,
                                     const SimplexOptions& opt = {});

}  // namespace hi::lp
