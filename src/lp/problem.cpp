#include "lp/problem.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace hi::lp {

int Problem::add_variable(double lower, double upper, double cost,
                          std::string name) {
  HI_REQUIRE(lower <= upper, "variable '" << name << "': lower bound " << lower
                                          << " exceeds upper bound " << upper);
  vars_.push_back(Variable{lower, upper, cost, std::move(name)});
  return static_cast<int>(vars_.size()) - 1;
}

int Problem::add_constraint(std::vector<Term> terms, Sense sense, double rhs,
                            std::string name) {
  for (const Term& t : terms) {
    HI_REQUIRE(t.var >= 0 && t.var < num_variables(),
               "constraint '" << name << "': unknown variable index "
                              << t.var);
  }
  rows_.push_back(Constraint{std::move(terms), sense, rhs, std::move(name)});
  return static_cast<int>(rows_.size()) - 1;
}

void Problem::set_cost(int v, double cost) {
  HI_REQUIRE(v >= 0 && v < num_variables(), "set_cost: bad variable " << v);
  vars_[static_cast<std::size_t>(v)].cost = cost;
}

void Problem::set_bounds(int v, double lower, double upper) {
  HI_REQUIRE(v >= 0 && v < num_variables(), "set_bounds: bad variable " << v);
  HI_REQUIRE(lower <= upper, "set_bounds: lower " << lower << " > upper "
                                                  << upper);
  vars_[static_cast<std::size_t>(v)].lower = lower;
  vars_[static_cast<std::size_t>(v)].upper = upper;
}

const Variable& Problem::variable(int v) const {
  HI_REQUIRE(v >= 0 && v < num_variables(), "variable: bad index " << v);
  return vars_[static_cast<std::size_t>(v)];
}

const Constraint& Problem::constraint(int r) const {
  HI_REQUIRE(r >= 0 && r < num_constraints(), "constraint: bad index " << r);
  return rows_[static_cast<std::size_t>(r)];
}

double Problem::objective_value(const std::vector<double>& x) const {
  HI_REQUIRE(x.size() == vars_.size(),
             "objective_value: point has " << x.size() << " coords, problem "
                                           << vars_.size());
  double v = 0.0;
  for (std::size_t j = 0; j < vars_.size(); ++j) {
    v += vars_[j].cost * x[j];
  }
  return v;
}

double Problem::row_violation(int r, const std::vector<double>& x,
                              double tol) const {
  const Constraint& c = constraint(r);
  double lhs = 0.0;
  for (const Term& t : c.terms) {
    lhs += t.coeff * x[static_cast<std::size_t>(t.var)];
  }
  switch (c.sense) {
    case Sense::kLessEqual:
      return lhs > c.rhs + tol ? lhs - c.rhs : 0.0;
    case Sense::kGreaterEqual:
      return lhs < c.rhs - tol ? c.rhs - lhs : 0.0;
    case Sense::kEqual:
      return std::fabs(lhs - c.rhs) > tol ? std::fabs(lhs - c.rhs) : 0.0;
  }
  return 0.0;
}

bool Problem::is_feasible(const std::vector<double>& x, double tol) const {
  if (x.size() != vars_.size()) {
    return false;
  }
  for (std::size_t j = 0; j < vars_.size(); ++j) {
    if (x[j] < vars_[j].lower - tol || x[j] > vars_[j].upper + tol) {
      return false;
    }
  }
  for (int r = 0; r < num_constraints(); ++r) {
    if (row_violation(r, x, tol) > 0.0) {
      return false;
    }
  }
  return true;
}

}  // namespace hi::lp
