#include "lp/simplex.hpp"

#include <cmath>
#include <cstddef>

#include "common/assert.hpp"

namespace hi::lp {

const char* to_string(Status s) {
  switch (s) {
    case Status::kOptimal:
      return "optimal";
    case Status::kInfeasible:
      return "infeasible";
    case Status::kUnbounded:
      return "unbounded";
    case Status::kIterationLimit:
      return "iteration-limit";
  }
  return "?";
}

namespace {

/// How an original variable maps into standard-form column(s).
struct VarMap {
  enum class Kind { kShift, kMirror, kSplit } kind = Kind::kShift;
  int col = -1;        ///< primary column
  int col_neg = -1;    ///< negative part (kSplit only)
  double offset = 0.0; ///< lo (kShift) or hi (kMirror)
};

/// Dense standard-form tableau  min c'y  s.t.  Ay = b, y >= 0, b >= 0.
struct Tableau {
  int m = 0;  ///< rows
  int n = 0;  ///< columns (structural + slack + artificial)
  std::vector<double> a;  ///< row-major m x n
  std::vector<double> b;  ///< rhs, length m
  std::vector<double> c;  ///< costs, length n
  std::vector<int> basis; ///< basic column of each row
  int first_artificial = 0;  ///< columns >= this are artificials

  double& at(int r, int col) { return a[static_cast<std::size_t>(r) * n + col]; }
  double at(int r, int col) const {
    return a[static_cast<std::size_t>(r) * n + col];
  }

  void pivot(int pr, int pc) {
    const double piv = at(pr, pc);
    HI_ASSERT(std::fabs(piv) > 0.0);
    const double inv = 1.0 / piv;
    for (int j = 0; j < n; ++j) {
      at(pr, j) *= inv;
    }
    b[pr] *= inv;
    for (int r = 0; r < m; ++r) {
      if (r == pr) continue;
      const double f = at(r, pc);
      if (f == 0.0) continue;
      for (int j = 0; j < n; ++j) {
        at(r, j) -= f * at(pr, j);
      }
      b[r] -= f * b[pr];
      at(r, pc) = 0.0;  // kill residual rounding noise
    }
    basis[pr] = pc;
  }
};

/// One phase of the simplex on reduced costs of `cost`.  Starts with
/// Dantzig's rule (steepest reduced cost) for speed and falls back to
/// Bland's rule (smallest index) after a stall budget, which guarantees
/// termination on degenerate problems.  `allow_col(j)` gates which
/// columns may enter.  Returns status and the iteration counts through
/// `iters` / `bland_pivots`.
template <typename AllowFn>
Status run_phase(Tableau& t, const std::vector<double>& cost, double tol,
                 int max_iters, int stall_budget, int& iters,
                 int& bland_pivots, AllowFn allow_col) {
  const int m = t.m;
  const int n = t.n;
  const int dantzig_budget = stall_budget > 0 ? stall_budget : 20 * (m + n);
  int phase_iters = 0;
  // y[j] of basic vars is b[row]; reduced cost d_j = c_j - z_j where
  // z_j = sum_r c_basis[r] * a[r][j].
  std::vector<double> d(static_cast<std::size_t>(n));
  for (;;) {
    if (iters >= max_iters) {
      return Status::kIterationLimit;
    }
    // Reduced costs.
    for (int j = 0; j < n; ++j) {
      d[j] = cost[static_cast<std::size_t>(j)];
    }
    for (int r = 0; r < m; ++r) {
      const double cb = cost[static_cast<std::size_t>(t.basis[r])];
      if (cb == 0.0) continue;
      for (int j = 0; j < n; ++j) {
        d[j] -= cb * t.at(r, j);
      }
    }
    int enter = -1;
    const bool bland_mode = phase_iters >= dantzig_budget;
    if (!bland_mode) {
      // Dantzig: most negative reduced cost.
      double best = -tol;
      for (int j = 0; j < n; ++j) {
        if (!allow_col(j)) continue;
        if (d[j] < best) {
          best = d[j];
          enter = j;
        }
      }
    } else {
      // Bland: smallest-index column with negative reduced cost.
      for (int j = 0; j < n; ++j) {
        if (!allow_col(j)) continue;
        if (d[j] < -tol) {
          enter = j;
          break;
        }
      }
    }
    if (enter < 0) {
      return Status::kOptimal;
    }
    ++phase_iters;
    // Ratio test, Bland tie-break on basic variable index.
    int leave = -1;
    double best_ratio = 0.0;
    for (int r = 0; r < m; ++r) {
      const double arj = t.at(r, enter);
      if (arj > tol) {
        const double ratio = t.b[r] / arj;
        if (leave < 0 || ratio < best_ratio - tol ||
            (std::fabs(ratio - best_ratio) <= tol &&
             t.basis[r] < t.basis[leave])) {
          leave = r;
          best_ratio = ratio;
        }
      }
    }
    if (leave < 0) {
      return Status::kUnbounded;
    }
    t.pivot(leave, enter);
    ++iters;
    if (bland_mode) {
      ++bland_pivots;
    }
  }
}

}  // namespace

Solution solve_simplex(const Problem& p, const SimplexOptions& opt) {
  const int nv = p.num_variables();
  const double tol = opt.tol;

  // ---- Build variable mapping and count standard-form columns. ----------
  std::vector<VarMap> vmap(static_cast<std::size_t>(nv));
  int ncols = 0;
  int n_ub_rows = 0;  // upper-bound rows for doubly-bounded variables
  for (int j = 0; j < nv; ++j) {
    const Variable& v = p.variable(j);
    VarMap& mpj = vmap[static_cast<std::size_t>(j)];
    const bool lo_fin = std::isfinite(v.lower);
    const bool hi_fin = std::isfinite(v.upper);
    if (lo_fin) {
      mpj.kind = VarMap::Kind::kShift;
      mpj.offset = v.lower;
      mpj.col = ncols++;
      if (hi_fin) {
        // Also needed when upper == lower: the row x' <= 0 pins the
        // shifted variable, which is how fixed/branched binaries work.
        ++n_ub_rows;
      }
    } else if (hi_fin) {
      mpj.kind = VarMap::Kind::kMirror;
      mpj.offset = v.upper;
      mpj.col = ncols++;
    } else {
      mpj.kind = VarMap::Kind::kSplit;
      mpj.col = ncols++;
      mpj.col_neg = ncols++;
    }
  }
  const int n_struct = ncols;

  // Fixed variables (lower == upper) contribute constants only; their
  // standard-form column has upper bound 0 and no upper-bound row, and the
  // shift handles the value.
  const int n_user_rows = p.num_constraints();
  const int m = n_user_rows + n_ub_rows;

  // Each row gets a slack/surplus or artificial; worst case one of each.
  // Columns: structural + (slack per row) + (artificial per row).
  Tableau t;
  t.m = m;
  t.n = n_struct + m /*slacks*/ + m /*artificials (allocated lazily)*/;
  t.first_artificial = n_struct + m;
  t.a.assign(static_cast<std::size_t>(t.m) * t.n, 0.0);
  t.b.assign(static_cast<std::size_t>(t.m), 0.0);
  t.c.assign(static_cast<std::size_t>(t.n), 0.0);
  t.basis.assign(static_cast<std::size_t>(t.m), -1);

  // Objective in minimize sense over standard columns.
  const double sense_mult =
      p.objective() == Objective::kMaximize ? -1.0 : 1.0;
  double obj_const = 0.0;
  for (int j = 0; j < nv; ++j) {
    const Variable& v = p.variable(j);
    const VarMap& mpj = vmap[static_cast<std::size_t>(j)];
    const double cj = sense_mult * v.cost;
    switch (mpj.kind) {
      case VarMap::Kind::kShift:
        t.c[static_cast<std::size_t>(mpj.col)] += cj;
        obj_const += cj * mpj.offset;
        break;
      case VarMap::Kind::kMirror:
        t.c[static_cast<std::size_t>(mpj.col)] -= cj;
        obj_const += cj * mpj.offset;
        break;
      case VarMap::Kind::kSplit:
        t.c[static_cast<std::size_t>(mpj.col)] += cj;
        t.c[static_cast<std::size_t>(mpj.col_neg)] -= cj;
        break;
    }
  }

  // ---- Fill rows. --------------------------------------------------------
  // Writes coefficient `coeff` of original variable `var` into row r and
  // returns the rhs shift this mapping induces.
  auto emit_term = [&](int r, int var, double coeff) -> double {
    const VarMap& mpj = vmap[static_cast<std::size_t>(var)];
    switch (mpj.kind) {
      case VarMap::Kind::kShift:
        t.at(r, mpj.col) += coeff;
        return coeff * mpj.offset;
      case VarMap::Kind::kMirror:
        t.at(r, mpj.col) -= coeff;
        return coeff * mpj.offset;
      case VarMap::Kind::kSplit:
        t.at(r, mpj.col) += coeff;
        t.at(r, mpj.col_neg) -= coeff;
        return 0.0;
    }
    return 0.0;
  };

  std::vector<Sense> row_sense(static_cast<std::size_t>(m));
  for (int r = 0; r < n_user_rows; ++r) {
    const Constraint& c = p.constraint(r);
    double shift = 0.0;
    for (const Term& term : c.terms) {
      shift += emit_term(r, term.var, term.coeff);
    }
    t.b[r] = c.rhs - shift;
    row_sense[static_cast<std::size_t>(r)] = c.sense;
  }
  // Upper-bound rows: x'_j <= hi - lo for doubly-bounded shifted vars.
  {
    int r = n_user_rows;
    for (int j = 0; j < nv; ++j) {
      const Variable& v = p.variable(j);
      const VarMap& mpj = vmap[static_cast<std::size_t>(j)];
      if (mpj.kind == VarMap::Kind::kShift && std::isfinite(v.upper)) {
        t.at(r, mpj.col) = 1.0;
        t.b[r] = v.upper - v.lower;
        row_sense[static_cast<std::size_t>(r)] = Sense::kLessEqual;
        ++r;
      }
    }
    HI_ASSERT(r == m);
  }

  // Normalize to b >= 0 and install slack / artificial basis.
  int n_art = 0;
  for (int r = 0; r < m; ++r) {
    Sense s = row_sense[static_cast<std::size_t>(r)];
    if (t.b[r] < 0.0) {
      for (int j = 0; j < n_struct; ++j) {
        t.at(r, j) = -t.at(r, j);
      }
      t.b[r] = -t.b[r];
      if (s == Sense::kLessEqual) {
        s = Sense::kGreaterEqual;
      } else if (s == Sense::kGreaterEqual) {
        s = Sense::kLessEqual;
      }
    }
    const int slack_col = n_struct + r;
    switch (s) {
      case Sense::kLessEqual:
        t.at(r, slack_col) = 1.0;
        t.basis[r] = slack_col;  // natural basis
        break;
      case Sense::kGreaterEqual:
        t.at(r, slack_col) = -1.0;
        break;
      case Sense::kEqual:
        break;
    }
    if (t.basis[r] < 0) {
      const int art_col = t.first_artificial + n_art;
      ++n_art;
      t.at(r, art_col) = 1.0;
      t.basis[r] = art_col;
    }
  }
  const int n_used_cols = t.first_artificial + n_art;

  Solution sol;
  const int max_iters =
      opt.max_iterations > 0 ? opt.max_iterations
                             : 200 + 50 * (t.m + n_used_cols);
  int iters = 0;
  int bland_pivots = 0;

  // ---- Phase 1 (only when artificials exist). -----------------------------
  if (n_art > 0) {
    std::vector<double> phase1_cost(static_cast<std::size_t>(t.n), 0.0);
    for (int j = t.first_artificial; j < n_used_cols; ++j) {
      phase1_cost[static_cast<std::size_t>(j)] = 1.0;
    }
    const Status st = run_phase(
        t, phase1_cost, tol, max_iters, opt.dantzig_stall_budget, iters,
        bland_pivots, [&](int j) { return j < n_used_cols; });
    if (st == Status::kIterationLimit) {
      sol.status = st;
      sol.iterations = iters;
      sol.bland_pivots = bland_pivots;
      return sol;
    }
    // Phase-1 objective = sum of artificial values.
    double art_sum = 0.0;
    for (int r = 0; r < t.m; ++r) {
      if (t.basis[r] >= t.first_artificial) {
        art_sum += t.b[r];
      }
    }
    if (art_sum > opt.feas_tol) {
      sol.status = Status::kInfeasible;
      sol.iterations = iters;
      sol.bland_pivots = bland_pivots;
      return sol;
    }
    // Drive remaining basic artificials (value ~ 0) out of the basis.
    for (int r = 0; r < t.m; ++r) {
      if (t.basis[r] < t.first_artificial) continue;
      int pc = -1;
      for (int j = 0; j < t.first_artificial; ++j) {
        if (std::fabs(t.at(r, j)) > tol) {
          pc = j;
          break;
        }
      }
      if (pc >= 0) {
        t.pivot(r, pc);
      }
      // else: redundant row; the artificial stays basic at 0 and is locked
      // out of phase 2 by the allow_col gate below, so it stays at 0.
    }
  }

  // ---- Phase 2. -----------------------------------------------------------
  {
    const Status st = run_phase(
        t, t.c, tol, max_iters, opt.dantzig_stall_budget, iters,
        bland_pivots, [&](int j) { return j < t.first_artificial; });
    sol.iterations = iters;
    sol.bland_pivots = bland_pivots;
    if (st != Status::kOptimal) {
      sol.status = st;
      return sol;
    }
  }

  // ---- Extract the primal point in original space. ------------------------
  std::vector<double> y(static_cast<std::size_t>(t.n), 0.0);
  for (int r = 0; r < t.m; ++r) {
    y[static_cast<std::size_t>(t.basis[r])] = t.b[r];
  }
  sol.x.assign(static_cast<std::size_t>(nv), 0.0);
  for (int j = 0; j < nv; ++j) {
    const VarMap& mpj = vmap[static_cast<std::size_t>(j)];
    switch (mpj.kind) {
      case VarMap::Kind::kShift:
        sol.x[static_cast<std::size_t>(j)] =
            mpj.offset + y[static_cast<std::size_t>(mpj.col)];
        break;
      case VarMap::Kind::kMirror:
        sol.x[static_cast<std::size_t>(j)] =
            mpj.offset - y[static_cast<std::size_t>(mpj.col)];
        break;
      case VarMap::Kind::kSplit:
        sol.x[static_cast<std::size_t>(j)] =
            y[static_cast<std::size_t>(mpj.col)] -
            y[static_cast<std::size_t>(mpj.col_neg)];
        break;
    }
  }
  sol.objective = p.objective_value(sol.x);
  sol.status = Status::kOptimal;
  (void)obj_const;  // objective recomputed from x; constant not needed
  return sol;
}

}  // namespace hi::lp
